//! AST → SSA lowering.
//!
//! Scalars are lowered with on-the-fly SSA construction (Braun et al.,
//! "Simple and Efficient Construction of Static Single Assignment Form",
//! CC'13): each block keeps a per-variable definition map, loop headers are
//! left unsealed until their latch exists, and trivial phis are removed as
//! they are discovered. The result is the same canonical loop shape that
//! clang -O2 (mem2reg + loop rotation) produces, which is the shape the IDL
//! idiom library is written against:
//!
//! ```text
//! preheader:  ...init...            br header
//! header:     %i = phi [init, preheader], [%i.next, latch]
//!             %cond = icmp slt %i, %n
//!             br %cond, body, exit
//! body:       ...                    br latch
//! latch:      %i.next = add %i, 1    br header
//! ```
//!
//! Local arrays are `alloca`s indexed through single-index `gep`s
//! (multi-dimensional arrays are flattened row-major, as clang does for
//! constant-size arrays after instcombine).

use crate::ast::*;
use crate::CompileError;
use ssair::pass::{remove_instruction, replace_all_uses};
use ssair::{BlockId, FCmpPred, Function, ICmpPred, Module, Opcode, Type, ValueId};
use std::collections::HashMap;

type Result<T> = std::result::Result<T, CompileError>;

/// Math intrinsics callable from minicc source. The interpreter and the
/// kernel-extraction purity check both treat these as pure.
pub const MATH_INTRINSICS: &[(&str, usize)] = &[
    ("sqrt", 1),
    ("fabs", 1),
    ("exp", 1),
    ("log", 1),
    ("sin", 1),
    ("cos", 1),
    ("pow", 2),
    ("fmin", 2),
    ("fmax", 2),
];

/// Lowers a parsed program to an SSA module.
pub fn lower_program(prog: &Program, name: &str) -> Result<Module> {
    let mut module = Module::new(name);
    let signatures: HashMap<String, (Vec<CType>, CType)> = prog
        .funcs
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                (
                    f.params.iter().map(|(_, t)| t.clone()).collect(),
                    f.ret.clone(),
                ),
            )
        })
        .collect();
    for func in &prog.funcs {
        let lowered = FuncLower::new(func, &signatures)?.run(func)?;
        module.add_function(lowered);
    }
    Ok(module)
}

fn ir_type(ty: &CType) -> Type {
    match ty {
        CType::Int => Type::I32,
        CType::Long => Type::I64,
        CType::Float => Type::F32,
        CType::Double => Type::F64,
        CType::Void => Type::Void,
        CType::Ptr(p) => ir_type(p).ptr_to(),
    }
}

/// A typed value during lowering: either a C-typed value or a boolean
/// (`i1`, produced by comparisons and logic).
#[derive(Debug, Clone, PartialEq)]
enum Ty {
    Bool,
    C(CType),
}

#[derive(Debug, Clone)]
enum VarKind {
    /// SSA scalar (including pointer-typed parameters).
    Scalar(CType),
    /// Local array backed by an alloca; dims in row-major order.
    Array {
        alloca: ValueId,
        elem: CType,
        dims: Vec<usize>,
    },
}

struct FuncLower<'a> {
    f: Function,
    signatures: &'a HashMap<String, (Vec<CType>, CType)>,
    /// Scope stack: source name → unique internal name.
    scopes: Vec<HashMap<String, String>>,
    /// Internal name → kind.
    vars: HashMap<String, VarKind>,
    /// SSA defs: internal name → per-block value.
    defs: HashMap<String, HashMap<BlockId, ValueId>>,
    sealed: Vec<bool>,
    incomplete: HashMap<BlockId, Vec<(String, ValueId)>>,
    /// Current insertion block; `None` after a terminator.
    cur: Option<BlockId>,
    unique: u32,
    ret: CType,
}

impl<'a> FuncLower<'a> {
    fn new(def: &FuncDef, signatures: &'a HashMap<String, (Vec<CType>, CType)>) -> Result<Self> {
        let params: Vec<(String, Type)> = def
            .params
            .iter()
            .map(|(n, t)| (n.clone(), ir_type(t)))
            .collect();
        let f = Function::new(def.name.clone(), &params, ir_type(&def.ret));
        let mut this = FuncLower {
            f,
            signatures,
            scopes: vec![HashMap::new()],
            vars: HashMap::new(),
            defs: HashMap::new(),
            sealed: vec![true], // entry block has no predecessors
            incomplete: HashMap::new(),
            cur: Some(BlockId(0)),
            unique: 0,
            ret: def.ret.clone(),
        };
        for (i, (pname, pty)) in def.params.iter().enumerate() {
            let internal = this.declare(pname, def.line)?;
            this.vars
                .insert(internal.clone(), VarKind::Scalar(pty.clone()));
            let arg = this.f.params[i];
            this.write_var(&internal, BlockId(0), arg);
        }
        Ok(this)
    }

    fn run(mut self, def: &FuncDef) -> Result<Function> {
        self.stmts(&def.body)?;
        if let Some(b) = self.cur {
            match self.ret {
                CType::Void => {
                    self.f.append_ret(b, None);
                }
                ref other => {
                    // Falling off the end of a value-returning function is
                    // undefined behaviour in C; return zero for determinism.
                    let zero = self.zero_const(other.clone());
                    self.f.append_ret(b, Some(zero));
                }
            }
        }
        Ok(self.f)
    }

    // ----- naming & scopes -----

    fn declare(&mut self, name: &str, line: usize) -> Result<String> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(CompileError {
                line,
                message: format!("redeclaration of {name:?} in the same scope"),
            });
        }
        let internal = if self.vars.contains_key(name) || self.defs.contains_key(name) {
            self.unique += 1;
            format!("{name}.{}", self.unique)
        } else {
            name.to_owned()
        };
        scope.insert(name.to_owned(), internal.clone());
        Ok(internal)
    }

    fn resolve(&self, name: &str, line: usize) -> Result<String> {
        for scope in self.scopes.iter().rev() {
            if let Some(internal) = scope.get(name) {
                return Ok(internal.clone());
            }
        }
        Err(CompileError {
            line,
            message: format!("use of undeclared variable {name:?}"),
        })
    }

    // ----- SSA construction (Braun et al.) -----

    fn scalar_type(&self, internal: &str) -> CType {
        match &self.vars[internal] {
            VarKind::Scalar(t) => t.clone(),
            VarKind::Array { .. } => unreachable!("arrays are not SSA variables"),
        }
    }

    fn write_var(&mut self, internal: &str, block: BlockId, value: ValueId) {
        self.defs
            .entry(internal.to_owned())
            .or_default()
            .insert(block, value);
    }

    fn read_var(&mut self, internal: &str, block: BlockId) -> ValueId {
        if let Some(&v) = self.defs.get(internal).and_then(|m| m.get(&block)) {
            return v;
        }
        self.read_var_recursive(internal, block)
    }

    fn preds(&self, block: BlockId) -> Vec<BlockId> {
        let mut ps = Vec::new();
        for b in self.f.block_ids() {
            if self.f.successors(b).contains(&block) {
                ps.push(b);
            }
        }
        ps
    }

    fn read_var_recursive(&mut self, internal: &str, block: BlockId) -> ValueId {
        let ty = ir_type(&self.scalar_type(internal));
        let val = if !self.sealed[block.0 as usize] {
            let phi = self.f.append_phi(block, ty);
            self.f.set_name(phi, internal);
            self.incomplete
                .entry(block)
                .or_default()
                .push((internal.to_owned(), phi));
            phi
        } else {
            let preds = self.preds(block);
            if preds.len() == 1 {
                self.read_var(internal, preds[0])
            } else {
                let phi = self.f.append_phi(block, ty);
                self.f.set_name(phi, internal);
                self.write_var(internal, block, phi);
                self.add_phi_operands(internal, phi, block)
            }
        };
        self.write_var(internal, block, val);
        val
    }

    fn add_phi_operands(&mut self, internal: &str, phi: ValueId, block: BlockId) -> ValueId {
        for pred in self.preds(block) {
            let v = self.read_var(internal, pred);
            self.f.add_phi_incoming(phi, v, pred);
        }
        self.try_remove_trivial_phi(phi)
    }

    fn try_remove_trivial_phi(&mut self, phi: ValueId) -> ValueId {
        let operands = self.f.instr(phi).expect("phi").operands.clone();
        let mut same: Option<ValueId> = None;
        for op in operands {
            if op == phi || Some(op) == same {
                continue;
            }
            if same.is_some() {
                return phi; // merges at least two distinct values
            }
            same = Some(op);
        }
        let Some(same) = same else { return phi };
        // Collect phi users before rewiring.
        let du = ssair::analysis::DefUse::new(&self.f);
        let users: Vec<ValueId> = du
            .users(phi)
            .iter()
            .copied()
            .filter(|&u| u != phi && self.f.opcode(u) == Some(Opcode::Phi))
            .collect();
        replace_all_uses(&mut self.f, phi, same);
        remove_instruction(&mut self.f, phi);
        // Fix definition tables that still point at the removed phi.
        for per_block in self.defs.values_mut() {
            for v in per_block.values_mut() {
                if *v == phi {
                    *v = same;
                }
            }
        }
        for u in users {
            // A user phi may have become trivial in turn.
            if self.f.opcode(u) == Some(Opcode::Phi) {
                self.try_remove_trivial_phi(u);
            }
        }
        same
    }

    fn seal_block(&mut self, block: BlockId) {
        if self.sealed[block.0 as usize] {
            return;
        }
        self.sealed[block.0 as usize] = true;
        for (name, phi) in self.incomplete.remove(&block).unwrap_or_default() {
            self.add_phi_operands(&name, phi, block);
        }
    }

    fn new_block(&mut self, name: &str, sealed: bool) -> BlockId {
        let b = self.f.add_block(name);
        self.sealed.push(sealed);
        debug_assert_eq!(self.sealed.len(), self.f.num_blocks());
        b
    }

    // ----- constants & conversions -----

    fn zero_const(&mut self, ty: CType) -> ValueId {
        match ty {
            CType::Float | CType::Double => self.f.const_float(ir_type(&ty), 0.0),
            _ => self.f.const_int(ir_type(&ty), 0),
        }
    }

    /// Converts `v` of type `from` to C type `to`, folding constants.
    fn convert(&mut self, v: ValueId, from: &Ty, to: &CType, line: usize) -> Result<ValueId> {
        let b = self.block(line)?;
        // Constant folding first.
        match (&self.f.value(v).kind, to) {
            (ssair::ValueKind::ConstInt(c), CType::Int | CType::Long) => {
                return Ok(self.f.const_int(ir_type(to), *c));
            }
            (ssair::ValueKind::ConstInt(c), CType::Float | CType::Double) => {
                let c = *c;
                return Ok(self.f.const_float(ir_type(to), c as f64));
            }
            (ssair::ValueKind::ConstFloat(c), CType::Float | CType::Double) => {
                let c = *c;
                let c = if *to == CType::Float {
                    c as f32 as f64
                } else {
                    c
                };
                return Ok(self.f.const_float(ir_type(to), c));
            }
            (ssair::ValueKind::ConstFloat(c), CType::Int | CType::Long) => {
                let c = *c;
                return Ok(self.f.const_int(ir_type(to), c as i64));
            }
            _ => {}
        }
        let from_c = match from {
            Ty::Bool => {
                // Bool → integer via zext (then to float if needed).
                if to.is_integer() {
                    return Ok(self.f.append_simple(b, ir_type(to), Opcode::ZExt, vec![v]));
                }
                let widened = self.f.append_simple(b, Type::I32, Opcode::ZExt, vec![v]);
                return self.convert(widened, &Ty::C(CType::Int), to, line);
            }
            Ty::C(c) => c.clone(),
        };
        if from_c == *to {
            return Ok(v);
        }
        let out = ir_type(to);
        let instr = match (&from_c, to) {
            (CType::Int, CType::Long) => self.f.append_simple(b, out, Opcode::SExt, vec![v]),
            (CType::Long, CType::Int) => self.f.append_simple(b, out, Opcode::Trunc, vec![v]),
            (CType::Int | CType::Long, CType::Float | CType::Double) => {
                self.f.append_simple(b, out, Opcode::SIToFP, vec![v])
            }
            (CType::Float | CType::Double, CType::Int | CType::Long) => {
                self.f.append_simple(b, out, Opcode::FPToSI, vec![v])
            }
            (CType::Float, CType::Double) => self.f.append_simple(b, out, Opcode::FPExt, vec![v]),
            (CType::Double, CType::Float) => self.f.append_simple(b, out, Opcode::FPTrunc, vec![v]),
            (CType::Ptr(_), CType::Ptr(_)) => v, // pointer casts are free
            _ => {
                return Err(CompileError {
                    line,
                    message: format!("cannot convert {from_c:?} to {to:?}"),
                })
            }
        };
        Ok(instr)
    }

    /// The common type of a binary arithmetic operation (usual C
    /// conversions restricted to our types).
    fn common_type(a: &CType, b: &CType) -> CType {
        use CType::*;
        match (a, b) {
            (Double, _) | (_, Double) => Double,
            (Float, _) | (_, Float) => Float,
            (Long, _) | (_, Long) => Long,
            _ => Int,
        }
    }

    fn block(&self, line: usize) -> Result<BlockId> {
        self.cur.ok_or(CompileError {
            line,
            message: "statement is unreachable".into(),
        })
    }

    // ----- statements -----

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        for s in stmts {
            if self.cur.is_none() {
                // Dead code after return — C allows it; skip.
                return Ok(());
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<()> {
        match s {
            Stmt::Decl {
                name,
                ty,
                dims,
                init,
                line,
            } => self.decl(name, ty, dims, init, *line),
            Stmt::Assign {
                target,
                op,
                value,
                line,
            } => self.assign(target, *op, value, *line),
            Stmt::Expr(e, line) => {
                self.expr(e, *line)?;
                Ok(())
            }
            Stmt::Return(e, line) => self.ret_stmt(e.as_ref(), *line),
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                self.stmts(stmts)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::If { cond, then, other } => self.if_stmt(cond, then, other),
            Stmt::While { cond, body } => self.loop_stmt(None, Some(cond), None, body),
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                self.loop_stmt(None, cond.as_ref(), step.as_deref(), body)?;
                self.scopes.pop();
                Ok(())
            }
        }
    }

    fn decl(
        &mut self,
        name: &str,
        ty: &CType,
        dims: &[usize],
        init: &Option<Expr>,
        line: usize,
    ) -> Result<()> {
        let internal = self.declare(name, line)?;
        if dims.is_empty() {
            self.vars
                .insert(internal.clone(), VarKind::Scalar(ty.clone()));
            let value = match init {
                Some(e) => {
                    let (v, vty) = self.expr(e, line)?;
                    self.convert(v, &vty, ty, line)?
                }
                None => self.zero_const(ty.clone()),
            };
            let b = self.block(line)?;
            self.write_var(&internal, b, value);
        } else {
            let total: usize = dims.iter().product();
            let count = self.f.const_int(Type::I64, total as i64);
            // Allocas live in the entry block, like clang's.
            let entry = BlockId(0);
            let ptr_ty = ir_type(ty).ptr_to();
            let alloca = {
                // Insert before the entry terminator if one exists already.
                let v = self
                    .f
                    .append_simple(entry, ptr_ty, Opcode::Alloca, vec![count]);
                let instrs = &mut self.f.block_mut(entry).instrs;
                if instrs.len() >= 2 {
                    let last = instrs.len() - 1;
                    if let Some(&term) = instrs.get(last - 1) {
                        let term_is_terminator = matches!(
                            self.f.opcode(term),
                            Some(op) if op.is_terminator()
                        );
                        if term_is_terminator {
                            let instrs = &mut self.f.block_mut(entry).instrs;
                            instrs.swap(last - 1, last);
                        }
                    }
                }
                v
            };
            self.f.set_name(alloca, internal.clone());
            self.vars.insert(
                internal,
                VarKind::Array {
                    alloca,
                    elem: ty.clone(),
                    dims: dims.to_vec(),
                },
            );
            if init.is_some() {
                return Err(CompileError {
                    line,
                    message: "array initializers unsupported".into(),
                });
            }
        }
        Ok(())
    }

    /// Computes the address of `base[indices...]` and returns
    /// `(gep, element type)`.
    fn element_address(
        &mut self,
        base: &str,
        indices: &[Expr],
        line: usize,
    ) -> Result<(ValueId, CType)> {
        let internal = self.resolve(base, line)?;
        let kind = self.vars[&internal].clone();
        match kind {
            VarKind::Scalar(CType::Ptr(elem)) => {
                if indices.len() != 1 {
                    return Err(CompileError {
                        line,
                        message: format!("pointer {base:?} takes exactly one subscript"),
                    });
                }
                let (iv, ity) = self.expr(&indices[0], line)?;
                let idx = self.index_to_i64(iv, &ity, line)?;
                let b = self.block(line)?;
                let ptr = self.read_var(&internal, b);
                let ptr_ty = self.f.value(ptr).ty.clone();
                let gep = self.f.append_simple(b, ptr_ty, Opcode::Gep, vec![ptr, idx]);
                Ok((gep, (*elem).clone()))
            }
            VarKind::Scalar(other) => Err(CompileError {
                line,
                message: format!("cannot subscript non-pointer {base:?} of type {other:?}"),
            }),
            VarKind::Array { alloca, elem, dims } => {
                if indices.len() != dims.len() {
                    return Err(CompileError {
                        line,
                        message: format!(
                            "array {base:?} has {} dimensions, {} indices given",
                            dims.len(),
                            indices.len()
                        ),
                    });
                }
                // Row-major flattening: ((i0*d1 + i1)*d2 + i2)...
                let mut flat: Option<ValueId> = None;
                for (k, idx_expr) in indices.iter().enumerate() {
                    let (iv, ity) = self.expr(idx_expr, line)?;
                    let idx = self.index_to_i64(iv, &ity, line)?;
                    flat = Some(match flat {
                        None => idx,
                        Some(acc) => {
                            let b = self.block(line)?;
                            let dim = self.f.const_int(Type::I64, dims[k] as i64);
                            let scaled =
                                self.f
                                    .append_simple(b, Type::I64, Opcode::Mul, vec![acc, dim]);
                            self.f
                                .append_simple(b, Type::I64, Opcode::Add, vec![scaled, idx])
                        }
                    });
                }
                let idx = flat.expect("at least one index");
                let b = self.block(line)?;
                let ptr_ty = ir_type(&elem).ptr_to();
                let gep = self
                    .f
                    .append_simple(b, ptr_ty, Opcode::Gep, vec![alloca, idx]);
                Ok((gep, elem))
            }
        }
    }

    fn index_to_i64(&mut self, v: ValueId, ty: &Ty, line: usize) -> Result<ValueId> {
        match ty {
            Ty::C(c) if c.is_integer() => self.convert(v, ty, &CType::Long, line),
            Ty::Bool => self.convert(v, ty, &CType::Long, line),
            other => Err(CompileError {
                line,
                message: format!("array index has type {other:?}"),
            }),
        }
    }

    fn assign(
        &mut self,
        target: &LValue,
        op: Option<BinOp>,
        value: &Expr,
        line: usize,
    ) -> Result<()> {
        match target {
            LValue::Var(name) => {
                let internal = self.resolve(name, line)?;
                if matches!(self.vars[&internal], VarKind::Array { .. }) {
                    return Err(CompileError {
                        line,
                        message: format!("cannot assign to array {name:?}"),
                    });
                }
                let ty = self.scalar_type(&internal);
                let new_value = match op {
                    None => {
                        let (v, vty) = self.expr(value, line)?;
                        self.convert(v, &vty, &ty, line)?
                    }
                    Some(binop) => {
                        let b = self.block(line)?;
                        let old = self.read_var(&internal, b);
                        let (rhs, rty) = self.expr(value, line)?;
                        self.binary_values(binop, old, &Ty::C(ty.clone()), rhs, &rty, line)?
                            .0
                    }
                };
                // Compound assignment on e.g. int keeps the variable's type.
                let final_value = {
                    let vty = self.f.value(new_value).ty.clone();
                    if vty == ir_type(&ty) {
                        new_value
                    } else {
                        let approx = self.ssair_ty_to_c(&vty, line)?;
                        self.convert(new_value, &Ty::C(approx), &ty, line)?
                    }
                };
                let b = self.block(line)?;
                self.write_var(&internal, b, final_value);
                if let Some(n) = self.f.value(final_value).name.clone() {
                    let _ = n; // keep any existing name
                } else {
                    self.f.set_name(final_value, format!("{internal}.v"));
                }
                Ok(())
            }
            LValue::Index { base, indices } => {
                let (addr, elem) = self.element_address(base, indices, line)?;
                let stored = match op {
                    None => {
                        let (v, vty) = self.expr(value, line)?;
                        self.convert(v, &vty, &elem, line)?
                    }
                    Some(binop) => {
                        let b = self.block(line)?;
                        let old = self
                            .f
                            .append_simple(b, ir_type(&elem), Opcode::Load, vec![addr]);
                        let (rhs, rty) = self.expr(value, line)?;
                        let (res, rty2) =
                            self.binary_values(binop, old, &Ty::C(elem.clone()), rhs, &rty, line)?;
                        self.convert(res, &rty2, &elem, line)?
                    }
                };
                let b = self.block(line)?;
                self.f
                    .append_simple(b, Type::Void, Opcode::Store, vec![stored, addr]);
                Ok(())
            }
        }
    }

    fn ssair_ty_to_c(&self, ty: &Type, line: usize) -> Result<CType> {
        Ok(match ty {
            Type::I1 | Type::I32 => CType::Int,
            Type::I64 => CType::Long,
            Type::F32 => CType::Float,
            Type::F64 => CType::Double,
            Type::Ptr(p) => self.ssair_ty_to_c(p, line)?.ptr_to(),
            Type::Void => {
                return Err(CompileError {
                    line,
                    message: "void value used".into(),
                });
            }
        })
    }

    fn ret_stmt(&mut self, e: Option<&Expr>, line: usize) -> Result<()> {
        let b = self.block(line)?;
        match (e, self.ret.clone()) {
            (None, CType::Void) => {
                self.f.append_ret(b, None);
            }
            (Some(e), ret_ty) if ret_ty != CType::Void => {
                let (v, vty) = self.expr(e, line)?;
                let v = self.convert(v, &vty, &ret_ty, line)?;
                let b = self.block(line)?;
                self.f.append_ret(b, Some(v));
            }
            _ => {
                return Err(CompileError {
                    line,
                    message: "return value does not match function return type".into(),
                })
            }
        }
        self.cur = None;
        Ok(())
    }

    fn if_stmt(&mut self, cond: &Expr, then: &[Stmt], other: &[Stmt]) -> Result<()> {
        let line = 0;
        let c = self.condition(cond, line)?;
        let b = self.block(line)?;
        let then_bb = self.new_block("if.then", true);
        // The false edge is patched below once we know whether an else block
        // or a merge block receives it (both targets temporarily point at
        // then_bb; duplicate targets to one block yield a single CFG edge).
        let condbr = self.f.append_condbr(b, c, then_bb, then_bb);
        self.cur = Some(then_bb);
        self.scoped_stmts(then)?;
        let then_end = self.cur;
        let else_end = if other.is_empty() {
            None
        } else {
            let else_bb = self.new_block("if.else", true);
            self.f.instr_mut(condbr).expect("condbr").targets[1] = else_bb;
            self.cur = Some(else_bb);
            self.scoped_stmts(other)?;
            self.cur
        };
        let false_edge_needs_merge = other.is_empty();
        if then_end.is_none() && else_end.is_none() && !false_edge_needs_merge {
            // Both arms returned: no merge block exists.
            self.cur = None;
            return Ok(());
        }
        let merge_bb = self.new_block("if.end", false);
        if false_edge_needs_merge {
            self.f.instr_mut(condbr).expect("condbr").targets[1] = merge_bb;
        }
        if let Some(end) = then_end {
            self.f.append_br(end, merge_bb);
        }
        if let Some(end) = else_end {
            self.f.append_br(end, merge_bb);
        }
        self.seal_block(merge_bb);
        self.cur = Some(merge_bb);
        Ok(())
    }

    fn scoped_stmts(&mut self, stmts: &[Stmt]) -> Result<()> {
        self.scopes.push(HashMap::new());
        self.stmts(stmts)?;
        self.scopes.pop();
        Ok(())
    }

    /// Shared lowering of `while` (no step) and `for` (init already done).
    fn loop_stmt(
        &mut self,
        _unused: Option<()>,
        cond: Option<&Expr>,
        step: Option<&Stmt>,
        body: &[Stmt],
    ) -> Result<()> {
        let line = 0;
        let pre = self.block(line)?;
        let header = self.new_block("loop.header", false);
        self.f.append_br(pre, header);
        self.cur = Some(header);
        let c = match cond {
            Some(e) => self.condition(e, line)?,
            None => self.f.const_int(Type::I1, 1),
        };
        let header_end = self.block(line)?;
        let body_bb = self.new_block("loop.body", false);
        let latch = self.new_block("loop.latch", false);
        let exit = self.new_block("loop.exit", false);
        self.f.append_condbr(header_end, c, body_bb, exit);
        self.seal_block(body_bb); // single pred: the header chain
        self.cur = Some(body_bb);
        self.scoped_stmts(body)?;
        match self.cur {
            Some(end) => {
                self.f.append_br(end, latch);
            }
            None => {
                return Err(CompileError {
                    line,
                    message:
                        "loop body never reaches the loop latch (unconditional return inside loop)"
                            .into(),
                })
            }
        }
        self.seal_block(latch);
        self.cur = Some(latch);
        if let Some(s) = step {
            self.scopes.push(HashMap::new());
            self.stmt(s)?;
            self.scopes.pop();
        }
        let latch_end = self.block(line)?;
        self.f.append_br(latch_end, header);
        self.seal_block(header);
        self.seal_block(exit);
        self.cur = Some(exit);
        Ok(())
    }

    // ----- expressions -----

    fn condition(&mut self, e: &Expr, line: usize) -> Result<ValueId> {
        let (v, ty) = self.expr(e, line)?;
        match ty {
            Ty::Bool => Ok(v),
            Ty::C(c) if c.is_integer() => {
                let b = self.block(line)?;
                let zero = self.f.const_int(ir_type(&c), 0);
                Ok(self
                    .f
                    .append_simple(b, Type::I1, Opcode::ICmp(ICmpPred::Ne), vec![v, zero]))
            }
            Ty::C(c) if c.is_float() => {
                let b = self.block(line)?;
                let zero = self.f.const_float(ir_type(&c), 0.0);
                Ok(self
                    .f
                    .append_simple(b, Type::I1, Opcode::FCmp(FCmpPred::One), vec![v, zero]))
            }
            other => Err(CompileError {
                line,
                message: format!("condition has non-scalar type {other:?}"),
            }),
        }
    }

    fn binary_values(
        &mut self,
        op: BinOp,
        lv: ValueId,
        lt: &Ty,
        rv: ValueId,
        rt: &Ty,
        line: usize,
    ) -> Result<(ValueId, Ty)> {
        let lc = self.as_arith(lt, line)?;
        let rc = self.as_arith(rt, line)?;
        let common = Self::common_type(&lc, &rc);
        let lv = self.convert(lv, lt, &common, line)?;
        let rv = self.convert(rv, rt, &common, line)?;
        let b = self.block(line)?;
        let opcode = match (op, common.is_float()) {
            (BinOp::Add, false) => Opcode::Add,
            (BinOp::Sub, false) => Opcode::Sub,
            (BinOp::Mul, false) => Opcode::Mul,
            (BinOp::Div, false) => Opcode::SDiv,
            (BinOp::Rem, false) => Opcode::SRem,
            (BinOp::Add, true) => Opcode::FAdd,
            (BinOp::Sub, true) => Opcode::FSub,
            (BinOp::Mul, true) => Opcode::FMul,
            (BinOp::Div, true) => Opcode::FDiv,
            (BinOp::Rem, true) => {
                return Err(CompileError {
                    line,
                    message: "% is not defined for floating types".into(),
                })
            }
        };
        let v = self
            .f
            .append_simple(b, ir_type(&common), opcode, vec![lv, rv]);
        Ok((v, Ty::C(common)))
    }

    fn as_arith(&self, ty: &Ty, line: usize) -> Result<CType> {
        match ty {
            Ty::Bool => Ok(CType::Int),
            Ty::C(c) if c.is_integer() || c.is_float() => Ok(c.clone()),
            Ty::C(other) => Err(CompileError {
                line,
                message: format!("{other:?} is not an arithmetic type"),
            }),
        }
    }

    fn expr(&mut self, e: &Expr, line: usize) -> Result<(ValueId, Ty)> {
        match e {
            Expr::IntLit(v) => Ok((self.f.const_int(Type::I32, *v), Ty::C(CType::Int))),
            Expr::FloatLit(v, is_f32) => {
                let (ty, cty) = if *is_f32 {
                    (Type::F32, CType::Float)
                } else {
                    (Type::F64, CType::Double)
                };
                Ok((self.f.const_float(ty, *v), Ty::C(cty)))
            }
            Expr::Var(name) => {
                let internal = self.resolve(name, line)?;
                match &self.vars[&internal] {
                    VarKind::Scalar(ty) => {
                        let ty = ty.clone();
                        let b = self.block(line)?;
                        let v = self.read_var(&internal, b);
                        Ok((v, Ty::C(ty)))
                    }
                    VarKind::Array { alloca, elem, .. } => {
                        // Array decays to pointer (single-dim only).
                        Ok(((*alloca), Ty::C(elem.clone().ptr_to())))
                    }
                }
            }
            Expr::Index { base, indices } => {
                let (addr, elem) = self.element_address(base, indices, line)?;
                let b = self.block(line)?;
                let v = self
                    .f
                    .append_simple(b, ir_type(&elem), Opcode::Load, vec![addr]);
                Ok((v, Ty::C(elem)))
            }
            Expr::Bin(op, l, r) => {
                let (lv, lt) = self.expr(l, line)?;
                let (rv, rt) = self.expr(r, line)?;
                self.binary_values(*op, lv, &lt, rv, &rt, line)
            }
            Expr::Cmp(op, l, r) => {
                let (lv, lt) = self.expr(l, line)?;
                let (rv, rt) = self.expr(r, line)?;
                let lc = self.as_arith(&lt, line)?;
                let rc = self.as_arith(&rt, line)?;
                let common = Self::common_type(&lc, &rc);
                let lv = self.convert(lv, &lt, &common, line)?;
                let rv = self.convert(rv, &rt, &common, line)?;
                let b = self.block(line)?;
                let v = if common.is_float() {
                    let pred = match op {
                        CmpOp::Eq => FCmpPred::Oeq,
                        CmpOp::Ne => FCmpPred::One,
                        CmpOp::Lt => FCmpPred::Olt,
                        CmpOp::Le => FCmpPred::Ole,
                        CmpOp::Gt => FCmpPred::Ogt,
                        CmpOp::Ge => FCmpPred::Oge,
                    };
                    self.f
                        .append_simple(b, Type::I1, Opcode::FCmp(pred), vec![lv, rv])
                } else {
                    let pred = match op {
                        CmpOp::Eq => ICmpPred::Eq,
                        CmpOp::Ne => ICmpPred::Ne,
                        CmpOp::Lt => ICmpPred::Slt,
                        CmpOp::Le => ICmpPred::Sle,
                        CmpOp::Gt => ICmpPred::Sgt,
                        CmpOp::Ge => ICmpPred::Sge,
                    };
                    self.f
                        .append_simple(b, Type::I1, Opcode::ICmp(pred), vec![lv, rv])
                };
                Ok((v, Ty::Bool))
            }
            Expr::And(l, r) => {
                let lc = self.condition(l, line)?;
                let rc = self.condition(r, line)?;
                let b = self.block(line)?;
                Ok((
                    self.f.append_simple(b, Type::I1, Opcode::And, vec![lc, rc]),
                    Ty::Bool,
                ))
            }
            Expr::Or(l, r) => {
                let lc = self.condition(l, line)?;
                let rc = self.condition(r, line)?;
                let b = self.block(line)?;
                Ok((
                    self.f.append_simple(b, Type::I1, Opcode::Or, vec![lc, rc]),
                    Ty::Bool,
                ))
            }
            Expr::Not(x) => {
                let c = self.condition(x, line)?;
                let b = self.block(line)?;
                let one = self.f.const_int(Type::I1, 1);
                Ok((
                    self.f.append_simple(b, Type::I1, Opcode::Xor, vec![c, one]),
                    Ty::Bool,
                ))
            }
            Expr::Neg(x) => {
                let (v, ty) = self.expr(x, line)?;
                let c = self.as_arith(&ty, line)?;
                let zero = self.zero_const(c.clone());
                self.binary_values(BinOp::Sub, zero, &Ty::C(c.clone()), v, &ty, line)
            }
            Expr::Ternary { cond, then, other } => {
                let c = self.condition(cond, line)?;
                let (tv, tt) = self.expr(then, line)?;
                let (ov, ot) = self.expr(other, line)?;
                let tc = self.as_arith(&tt, line)?;
                let oc = self.as_arith(&ot, line)?;
                let common = Self::common_type(&tc, &oc);
                let tv = self.convert(tv, &tt, &common, line)?;
                let ov = self.convert(ov, &ot, &common, line)?;
                let b = self.block(line)?;
                let v = self
                    .f
                    .append_simple(b, ir_type(&common), Opcode::Select, vec![c, tv, ov]);
                Ok((v, Ty::C(common)))
            }
            Expr::Cast { ty, expr } => {
                let (v, vty) = self.expr(expr, line)?;
                let v = self.convert(v, &vty, ty, line)?;
                Ok((v, Ty::C(ty.clone())))
            }
            Expr::Call { name, args } => self.call(name, args, line),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr], line: usize) -> Result<(ValueId, Ty)> {
        // Math intrinsics take and return double.
        if let Some((_, arity)) = MATH_INTRINSICS.iter().find(|(n, _)| *n == name) {
            if args.len() != *arity {
                return Err(CompileError {
                    line,
                    message: format!("{name} expects {arity} argument(s), got {}", args.len()),
                });
            }
            let mut vals = Vec::new();
            for a in args {
                let (v, vty) = self.expr(a, line)?;
                vals.push(self.convert(v, &vty, &CType::Double, line)?);
            }
            let b = self.block(line)?;
            let v = self.f.append_call(b, Type::F64, name, vals);
            return Ok((v, Ty::C(CType::Double)));
        }
        let Some((param_tys, ret_ty)) = self.signatures.get(name).cloned() else {
            return Err(CompileError {
                line,
                message: format!("call to unknown function {name:?}"),
            });
        };
        if param_tys.len() != args.len() {
            return Err(CompileError {
                line,
                message: format!(
                    "{name} expects {} argument(s), got {}",
                    param_tys.len(),
                    args.len()
                ),
            });
        }
        let mut vals = Vec::new();
        for (a, pty) in args.iter().zip(&param_tys) {
            let (v, vty) = self.expr(a, line)?;
            vals.push(self.convert(v, &vty, pty, line)?);
        }
        let b = self.block(line)?;
        let v = self.f.append_call(b, ir_type(&ret_ty), name, vals);
        Ok((v, Ty::C(ret_ty)))
    }
}

#[cfg(test)]
mod tests {
    use crate::compile_unoptimized;
    use ssair::Opcode;

    #[test]
    fn lowers_straight_line_code() {
        let m = compile_unoptimized("int f(int a, int b) { return a * b + a; }", "t").unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.num_blocks(), 1);
        let ops: Vec<_> = f
            .block(ssair::BlockId(0))
            .instrs
            .iter()
            .map(|&v| f.opcode(v).unwrap())
            .collect();
        assert_eq!(ops, vec![Opcode::Mul, Opcode::Add, Opcode::Ret]);
    }

    #[test]
    fn lowers_canonical_for_loop_with_phi() {
        let m = compile_unoptimized(
            "long sum(long n) { long acc = 0; for (long i = 0; i < n; i++) acc = acc + i; return acc; }",
            "t",
        )
        .unwrap();
        let f = m.function("sum").unwrap();
        // preheader(entry), header, body, latch, exit
        assert_eq!(f.num_blocks(), 5);
        let header = ssair::BlockId(1);
        let phis: Vec<_> = f
            .block(header)
            .instrs
            .iter()
            .filter(|&&v| f.opcode(v) == Some(Opcode::Phi))
            .collect();
        assert_eq!(phis.len(), 2, "iterator and accumulator phis");
    }

    #[test]
    fn trivial_phis_are_removed() {
        // `n` is never assigned in the loop, so no phi for it may survive.
        let m = compile_unoptimized(
            "long f(long n) { long s = 0; for (long i = 0; i < n; i++) s = s + n; return s; }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        let header = ssair::BlockId(1);
        let phis = f
            .block(header)
            .instrs
            .iter()
            .filter(|&&v| f.opcode(v) == Some(Opcode::Phi))
            .count();
        assert_eq!(phis, 2, "only i and s get phis, not n");
    }

    #[test]
    fn if_else_merges_with_phi() {
        let m = compile_unoptimized(
            "int f(int a) { int r = 0; if (a > 0) { r = 1; } else { r = 2; } return r; }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        let merge = ssair::BlockId(3);
        assert_eq!(f.opcode(f.block(merge).instrs[0]), Some(Opcode::Phi));
    }

    #[test]
    fn pointer_subscript_becomes_gep_load() {
        let m = compile_unoptimized("double f(double* x, int i) { return x[i]; }", "t").unwrap();
        let f = m.function("f").unwrap();
        let ops: Vec<_> = f
            .block(ssair::BlockId(0))
            .instrs
            .iter()
            .map(|&v| f.opcode(v).unwrap())
            .collect();
        // sext(i) to i64, gep, load, ret
        assert_eq!(
            ops,
            vec![Opcode::SExt, Opcode::Gep, Opcode::Load, Opcode::Ret]
        );
    }

    #[test]
    fn local_2d_array_flattens_row_major() {
        let m = compile_unoptimized(
            "double f() { double A[4][8]; A[1][2] = 5.0; return A[1][2]; }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        let text = format!("{f}");
        assert!(
            text.contains("alloca double, i64 32"),
            "4*8 elements: {text}"
        );
        // Flattened index 1*8+2 = 10 is computed with mul/add on constants
        // (not folded in the unoptimized pipeline).
        assert!(text.contains("mul i64"), "{text}");
    }

    #[test]
    fn long_long_index_has_no_sext() {
        let m = compile_unoptimized("double f(double* x, long i) { return x[i]; }", "t").unwrap();
        let f = m.function("f").unwrap();
        let ops: Vec<_> = f
            .block(ssair::BlockId(0))
            .instrs
            .iter()
            .map(|&v| f.opcode(v).unwrap())
            .collect();
        assert_eq!(ops, vec![Opcode::Gep, Opcode::Load, Opcode::Ret]);
    }

    #[test]
    fn shadowing_in_nested_loops_is_allowed() {
        let m = compile_unoptimized(
            "long f(long n) { long s = 0; for (int i = 0; i < n; i++) { s += i; } for (int i = 0; i < n; i++) { s += 2 * i; } return s; }",
            "t",
        )
        .unwrap();
        assert!(m.function("f").is_some());
    }

    #[test]
    fn ternary_lowers_to_select() {
        let m =
            compile_unoptimized("double f(double x) { return x > 0.0 ? x : -x; }", "t").unwrap();
        let f = m.function("f").unwrap();
        let has_select = f
            .block(ssair::BlockId(0))
            .instrs
            .iter()
            .any(|&v| f.opcode(v) == Some(Opcode::Select));
        assert!(has_select);
    }

    #[test]
    fn intrinsic_calls_and_conversions() {
        let m = compile_unoptimized("double f(int a) { return sqrt(a); }", "t").unwrap();
        let f = m.function("f").unwrap();
        let text = format!("{f}");
        assert!(text.contains("sitofp i32"));
        assert!(text.contains("call double @sqrt"));
    }

    #[test]
    fn rejects_undeclared_and_redeclared() {
        assert!(compile_unoptimized("int f() { return x; }", "t").is_err());
        assert!(compile_unoptimized("int f() { int a = 1; int a = 2; return a; }", "t").is_err());
    }

    #[test]
    fn void_function_gets_implicit_return() {
        let m = compile_unoptimized("void f(double* p) { p[0] = 1.0; }", "t").unwrap();
        let f = m.function("f").unwrap();
        let last = *f.block(ssair::BlockId(0)).instrs.last().unwrap();
        assert_eq!(f.opcode(last), Some(Opcode::Ret));
    }

    #[test]
    fn while_loop_shape() {
        let m = compile_unoptimized(
            "long f(long n) { long i = 0; while (i < n) { i = i + 2; } return i; }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        assert_eq!(f.num_blocks(), 5, "entry, header, body, latch, exit");
        let header = ssair::BlockId(1);
        assert_eq!(f.opcode(f.block(header).instrs[0]), Some(Opcode::Phi));
    }

    #[test]
    fn bool_arith_zext() {
        let m = compile_unoptimized("int f(int a) { return (a > 0) + 1; }", "t").unwrap();
        let text = format!("{}", m.function("f").unwrap());
        assert!(text.contains("zext"), "{text}");
    }

    #[test]
    fn int_index_into_2d_uses_i64_math() {
        let m = compile_unoptimized(
            "double f(double* a, int i, int j, int n) { return a[i * n + j]; }",
            "t",
        )
        .unwrap();
        let f = m.function("f").unwrap();
        let text = format!("{f}");
        // i*n+j computed in i32 then sext'd for the gep, like clang.
        assert!(text.contains("mul i32"));
        assert!(text.contains("sext i32"));
    }
}
