//! Pretty-printer: [`crate::ast`] back to compilable minicc C source.
//!
//! The inverse of [`crate::parse`]: every program the parser accepts (and
//! every program built from the AST constructors) prints to source text
//! that re-parses to a structurally equal AST. This is what lets `progen`
//! build programs as ASTs and persist failing cases as plain `.c` files in
//! the regression corpus.
//!
//! Sub-expressions are printed fully parenthesized — parentheses don't
//! exist in the AST, so this is the one canonical form that is guaranteed
//! to round-trip regardless of operator precedence.

use crate::ast::{BinOp, CType, CmpOp, Expr, FuncDef, LValue, Program, Stmt};
use std::fmt::Write;

/// Renders a whole translation unit.
#[must_use]
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (k, f) in p.funcs.iter().enumerate() {
        if k > 0 {
            out.push('\n');
        }
        print_func(&mut out, f);
    }
    out
}

/// Renders one function definition.
fn print_func(out: &mut String, f: &FuncDef) {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(name, ty)| format!("{} {name}", type_name(ty)))
        .collect();
    let _ = writeln!(
        out,
        "{} {}({}) {{",
        type_name(&f.ret),
        f.name,
        params.join(", ")
    );
    for s in &f.body {
        print_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

/// The C spelling of a type.
#[must_use]
pub fn type_name(ty: &CType) -> String {
    match ty {
        CType::Int => "int".into(),
        CType::Long => "long".into(),
        CType::Float => "float".into(),
        CType::Double => "double".into(),
        CType::Void => "void".into(),
        CType::Ptr(inner) => format!("{}*", type_name(inner)),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    match s {
        Stmt::Decl {
            name,
            ty,
            dims,
            init,
            ..
        } => {
            indent(out, depth);
            let _ = write!(out, "{} {name}", type_name(ty));
            for d in dims {
                let _ = write!(out, "[{d}]");
            }
            if let Some(e) = init {
                let _ = write!(out, " = {}", expr(e));
            }
            out.push_str(";\n");
        }
        Stmt::Assign {
            target, op, value, ..
        } => {
            indent(out, depth);
            let t = lvalue(target);
            match op {
                Some(o) => {
                    let _ = writeln!(out, "{t} {}= {};", binop(*o), expr(value));
                }
                None => {
                    let _ = writeln!(out, "{t} = {};", expr(value));
                }
            }
        }
        Stmt::Expr(e, _) => {
            indent(out, depth);
            let _ = writeln!(out, "{};", expr(e));
        }
        Stmt::If { cond, then, other } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({}) {{", expr(cond));
            for s in then {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            if other.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in other {
                    print_stmt(out, s, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body } => {
            indent(out, depth);
            let _ = writeln!(out, "while ({}) {{", expr(cond));
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, depth);
            let i = init.as_ref().map_or(String::new(), |s| inline_stmt(s));
            let c = cond.as_ref().map_or(String::new(), expr);
            let st = step.as_ref().map_or(String::new(), |s| inline_stmt(s));
            let _ = writeln!(out, "for ({i}; {c}; {st}) {{");
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Return(e, _) => {
            indent(out, depth);
            match e {
                Some(e) => {
                    let _ = writeln!(out, "return {};", expr(e));
                }
                None => out.push_str("return;\n"),
            }
        }
        Stmt::Block(stmts) => {
            indent(out, depth);
            out.push_str("{\n");
            for s in stmts {
                print_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

/// A statement rendered without trailing `;`/newline, as used in `for`
/// headers (declarations and assignments only).
fn inline_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Decl { name, ty, init, .. } => match init {
            Some(e) => format!("{} {name} = {}", type_name(ty), expr(e)),
            None => format!("{} {name}", type_name(ty)),
        },
        Stmt::Assign {
            target, op, value, ..
        } => match op {
            Some(o) => format!("{} {}= {}", lvalue(target), binop(*o), expr(value)),
            None => format!("{} = {}", lvalue(target), expr(value)),
        },
        Stmt::Expr(e, _) => expr(e),
        other => panic!("statement form not printable in a for header: {other:?}"),
    }
}

fn lvalue(l: &LValue) -> String {
    match l {
        LValue::Var(n) => n.clone(),
        LValue::Index { base, indices } => {
            let idx: Vec<String> = indices.iter().map(|e| format!("[{}]", expr(e))).collect();
            format!("{base}{}", idx.join(""))
        }
    }
}

fn binop(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
    }
}

fn cmpop(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Renders a float so the lexer reads back the exact same `f64` (`{:?}`
/// is the shortest round-tripping decimal form; negatives are wrapped so
/// the token stays a literal application of unary minus).
fn float_lit(v: f64, is_f32: bool) -> String {
    assert!(v.is_finite(), "minicc has no literal form for {v}");
    let suffix = if is_f32 { "f" } else { "" };
    let mag = format!("{:?}", v.abs());
    if v.is_sign_negative() {
        format!("(-{mag}{suffix})")
    } else {
        format!("{mag}{suffix}")
    }
}

/// Renders an expression (parenthesized wherever ambiguity is possible).
#[must_use]
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) if *v < 0 => format!("(-{})", v.unsigned_abs()),
        Expr::IntLit(v) => v.to_string(),
        Expr::FloatLit(v, f32) => float_lit(*v, *f32),
        Expr::Var(n) => n.clone(),
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a), binop(*op), expr(b)),
        Expr::Cmp(op, a, b) => format!("({} {} {})", expr(a), cmpop(*op), expr(b)),
        Expr::And(a, b) => format!("({} && {})", expr(a), expr(b)),
        Expr::Or(a, b) => format!("({} || {})", expr(a), expr(b)),
        Expr::Not(a) => format!("(!{})", expr(a)),
        Expr::Neg(a) => format!("(-{})", expr(a)),
        Expr::Index { base, indices } => {
            let idx: Vec<String> = indices.iter().map(|e| format!("[{}]", expr(e))).collect();
            format!("{base}{}", idx.join(""))
        }
        Expr::Call { name, args } => {
            let a: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", a.join(", "))
        }
        Expr::Ternary { cond, then, other } => {
            format!("({} ? {} : {})", expr(cond), expr(then), expr(other))
        }
        Expr::Cast { ty, expr: inner } => format!("(({}) {})", type_name(ty), expr(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;

    #[test]
    fn printed_source_reparses_to_the_same_ast() {
        let src = "double f(double* x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) {
                if (x[i] > 0.5) { s += x[i] * 2.0; } else { s = fmax(s, -x[i]); }
            }
            return s > 1.0 ? s : (double)n;
        }";
        // AST nodes carry source lines, so equality is checked on the
        // printed canonical form: print ∘ parse must be a fixpoint.
        let p1 = print_program(&parse_program(src).unwrap());
        let p2 = print_program(&parse_program(&p1).unwrap_or_else(|e| panic!("{e}\n{p1}")));
        assert_eq!(p1, p2, "print∘parse must be a fixpoint");
    }

    #[test]
    fn shortest_float_form_survives_the_round_trip() {
        for v in [0.1, 1.0, 2.5e-3, 1e30, 123456.789, 0.9999999999999999] {
            let p = Program {
                funcs: vec![FuncDef {
                    name: "f".into(),
                    params: vec![],
                    ret: CType::Double,
                    body: vec![Stmt::Return(Some(Expr::FloatLit(v, false)), 1)],
                    line: 1,
                }],
            };
            let printed = print_program(&p);
            let back = parse_program(&printed).unwrap();
            match &back.funcs[0].body[0] {
                Stmt::Return(Some(Expr::FloatLit(got, false)), _) => {
                    assert_eq!(got.to_bits(), v.to_bits(), "{v} must survive: {printed}");
                }
                other => panic!("{v} reparsed to {other:?}: {printed}"),
            }
        }
    }
}
