//! Mid-level optimizer.
//!
//! Plays the role of clang/LLVM `-O2` for the idiom-detection pipeline: the
//! passes here produce the canonical IR shapes the IDL idiom library (and
//! the paper's detector) expects:
//!
//! * **constant folding / algebraic simplification** — `instcombine`-lite;
//! * **LICM** — hoists loop-invariant pure computations (notably address
//!   arithmetic) into preheaders;
//! * **read-modify-write promotion** — turns `C[i][j] += ...` inner loops
//!   into register accumulation with a phi, the shape `DotProductLoop`
//!   matches (clang gets this from LICM + scalar promotion under TBAA;
//!   we justify it with the frontend's restrict-parameter guarantee);
//! * **dead code elimination**.
//!
//! All passes preserve the verifier invariants; `optimize_module` asserts
//! this in debug builds.

use ssair::analysis::{Analyses, Cfg, DomTree, Layout};
use ssair::pass::{eliminate_dead_code, replace_all_uses};
use ssair::{BlockId, Function, ICmpPred, Module, Opcode, Type, ValueId, ValueKind};

/// Runs the full pass pipeline over every function.
pub fn optimize_module(m: &mut Module) {
    for f in &mut m.functions {
        optimize_function(f);
    }
}

/// Runs the full pass pipeline over one function.
pub fn optimize_function(f: &mut Function) {
    // Two rounds reach a fixpoint on all benchmark inputs: promotion can
    // expose new folding opportunities and vice versa.
    for _ in 0..2 {
        while fold_constants(f) > 0 {}
        while common_subexpression_elimination(f) > 0 {}
        while eliminate_redundant_loads(f) > 0 {}
        hoist_loop_invariants(f);
        promote_read_modify_write(f);
        eliminate_dead_code(f);
    }
}

/// Block-local redundant-load elimination and store-to-load forwarding
/// (EarlyCSE's memory half). Within one block, a load from an address seen
/// earlier — by a load or a store — reuses the known value, as long as no
/// intervening store or call may alias it. Aliasing uses the frontend's
/// restrict model: addresses rooted at distinct parameters/allocas do not
/// alias. Returns the number of loads removed.
pub fn eliminate_redundant_loads(f: &mut Function) -> usize {
    let mut rewrites: Vec<(ValueId, ValueId)> = Vec::new();
    for b in f.block_ids().collect::<Vec<_>>() {
        // address value -> known content value
        let mut known: std::collections::HashMap<ValueId, ValueId> =
            std::collections::HashMap::new();
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            match i.opcode {
                Opcode::Load => {
                    let addr = i.operands[0];
                    match known.get(&addr) {
                        Some(&val) if f.value(val).ty == f.value(v).ty => {
                            rewrites.push((v, val));
                        }
                        _ => {
                            known.insert(addr, v);
                        }
                    }
                }
                Opcode::Store => {
                    let (val, addr) = (i.operands[0], i.operands[1]);
                    let root = address_root(f, addr);
                    known.retain(|&a, _| a == addr || address_root(f, a) != root);
                    known.insert(addr, val);
                }
                Opcode::Call => known.clear(),
                _ => {}
            }
        }
    }
    let n = rewrites.len();
    for (from, to) in rewrites {
        replace_all_uses(f, from, to);
        ssair::pass::remove_instruction(f, from);
    }
    if n > 0 {
        eliminate_dead_code(f);
    }
    n
}

/// Dominance-based common subexpression elimination over pure instructions
/// (including `gep`). Two instructions are congruent when they have the
/// same opcode (and predicate), type and identical operand values; the
/// dominating one replaces the dominated one. Returns rewrites performed.
///
/// This mirrors LLVM's EarlyCSE and matters for the idiom pipeline: the
/// frontend lowers every `C[i][j]` occurrence to a fresh gep chain, and
/// read-modify-write promotion needs the load and store of `C[i][j] += x`
/// to share one address value.
pub fn common_subexpression_elimination(f: &mut Function) -> usize {
    // Only placement and forward dominance are queried, so build just
    // those (the full `Analyses` bundle also pays for post-dominators,
    // def-use chains and the loop forest on every fixpoint iteration).
    let layout = Layout::new(f);
    let cfg = Cfg::new(f);
    let dom = DomTree::dominators(&cfg);
    let strictly_dominates = |a: ValueId, b: ValueId| {
        let (Some(ba), Some(bb)) = (layout.block_of(a), layout.block_of(b)) else {
            return false;
        };
        a != b
            && if ba == bb {
                layout.position(a) <= layout.position(b)
            } else {
                dom.dominates(ba, bb)
            }
    };
    let mut table: std::collections::HashMap<(Opcode, &Type, Vec<ValueId>), Vec<ValueId>> =
        std::collections::HashMap::new();
    let mut rewrites: Vec<(ValueId, ValueId)> = Vec::new();
    // Reverse post-order guarantees dominators are visited before their
    // dominated blocks (for reducible CFGs, which the frontend produces).
    for &b in &cfg.rpo {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            if !(i.opcode.is_pure_arith() || i.opcode == Opcode::Gep) {
                continue;
            }
            let key = (i.opcode, &f.value(v).ty, i.operands.clone());
            let entry = table.entry(key).or_default();
            if let Some(&prior) = entry.iter().find(|&&p| strictly_dominates(p, v)) {
                rewrites.push((v, prior));
            } else {
                entry.push(v);
            }
        }
    }
    let n = rewrites.len();
    for (from, to) in rewrites {
        replace_all_uses(f, from, to);
    }
    if n > 0 {
        eliminate_dead_code(f);
    }
    n
}

fn const_int_of(f: &Function, v: ValueId) -> Option<i64> {
    match f.value(v).kind {
        ValueKind::ConstInt(c) => Some(c),
        _ => None,
    }
}

fn const_float_of(f: &Function, v: ValueId) -> Option<f64> {
    match f.value(v).kind {
        ValueKind::ConstFloat(c) => Some(c),
        _ => None,
    }
}

/// One round of constant folding + algebraic identities. Returns the number
/// of rewrites performed.
pub fn fold_constants(f: &mut Function) -> usize {
    let mut rewrites: Vec<(ValueId, Replacement)> = Vec::new();
    enum Replacement {
        Int(i64),
        Float(f64),
        Value(ValueId),
    }
    for b in f.block_ids() {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            let ty = f.value(v).ty.clone();
            let ops = i.operands.clone();
            let repl = match i.opcode {
                Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::SDiv | Opcode::SRem => {
                    let (a, bo) = (ops[0], ops[1]);
                    match (const_int_of(f, a), const_int_of(f, bo)) {
                        (Some(x), Some(y)) => {
                            let r = match i.opcode {
                                Opcode::Add => x.wrapping_add(y),
                                Opcode::Sub => x.wrapping_sub(y),
                                Opcode::Mul => x.wrapping_mul(y),
                                Opcode::SDiv if y != 0 => x.wrapping_div(y),
                                Opcode::SRem if y != 0 => x.wrapping_rem(y),
                                _ => continue,
                            };
                            Some(Replacement::Int(r))
                        }
                        (Some(0), None) if i.opcode == Opcode::Add => Some(Replacement::Value(bo)),
                        (None, Some(0)) if matches!(i.opcode, Opcode::Add | Opcode::Sub) => {
                            Some(Replacement::Value(a))
                        }
                        (Some(1), None) if i.opcode == Opcode::Mul => Some(Replacement::Value(bo)),
                        (None, Some(1)) if matches!(i.opcode, Opcode::Mul | Opcode::SDiv) => {
                            Some(Replacement::Value(a))
                        }
                        (Some(0), None) | (None, Some(0)) if i.opcode == Opcode::Mul => {
                            Some(Replacement::Int(0))
                        }
                        _ => None,
                    }
                }
                Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
                    match (const_float_of(f, ops[0]), const_float_of(f, ops[1])) {
                        (Some(x), Some(y)) => {
                            let r = match i.opcode {
                                Opcode::FAdd => x + y,
                                Opcode::FSub => x - y,
                                Opcode::FMul => x * y,
                                Opcode::FDiv => x / y,
                                _ => unreachable!(),
                            };
                            let r = if ty == Type::F32 { r as f32 as f64 } else { r };
                            Some(Replacement::Float(r))
                        }
                        // Float identities are only safe where rounding and
                        // NaN behaviour are unaffected: x*1.0 and x/1.0.
                        (None, Some(y))
                            if y == 1.0 && matches!(i.opcode, Opcode::FMul | Opcode::FDiv) =>
                        {
                            Some(Replacement::Value(ops[0]))
                        }
                        (Some(x), None) if x == 1.0 && i.opcode == Opcode::FMul => {
                            Some(Replacement::Value(ops[1]))
                        }
                        _ => None,
                    }
                }
                Opcode::SExt | Opcode::ZExt | Opcode::Trunc => {
                    const_int_of(f, ops[0]).map(Replacement::Int)
                }
                Opcode::SIToFP => const_int_of(f, ops[0]).map(|x| Replacement::Float(x as f64)),
                Opcode::FPExt => const_float_of(f, ops[0]).map(Replacement::Float),
                Opcode::FPTrunc => {
                    const_float_of(f, ops[0]).map(|x| Replacement::Float(x as f32 as f64))
                }
                Opcode::ICmp(pred) => match (const_int_of(f, ops[0]), const_int_of(f, ops[1])) {
                    (Some(x), Some(y)) => {
                        let r = match pred {
                            ICmpPred::Eq => x == y,
                            ICmpPred::Ne => x != y,
                            ICmpPred::Slt => x < y,
                            ICmpPred::Sle => x <= y,
                            ICmpPred::Sgt => x > y,
                            ICmpPred::Sge => x >= y,
                        };
                        Some(Replacement::Int(i64::from(r)))
                    }
                    _ => None,
                },
                Opcode::Select => match const_int_of(f, ops[0]) {
                    Some(c) => Some(Replacement::Value(if c != 0 { ops[1] } else { ops[2] })),
                    None if ops[1] == ops[2] => Some(Replacement::Value(ops[1])),
                    None => None,
                },
                _ => None,
            };
            if let Some(r) = repl {
                rewrites.push((v, r));
            }
        }
    }
    let n = rewrites.len();
    for (v, r) in rewrites {
        let ty = f.value(v).ty.clone();
        let to = match r {
            Replacement::Int(c) => f.const_int(ty, c),
            Replacement::Float(c) => f.const_float(ty, c),
            Replacement::Value(w) => w,
        };
        replace_all_uses(f, v, to);
    }
    if n > 0 {
        eliminate_dead_code(f);
    }
    n
}

/// Hoists loop-invariant pure instructions into loop preheaders, innermost
/// loops first, iterating until nothing moves. Division is not hoisted
/// (speculative traps); memory operations are never moved.
pub fn hoist_loop_invariants(f: &mut Function) {
    loop {
        let an = Analyses::new(f);
        let mut moved = false;
        // Innermost first: process deeper loops before their parents.
        let mut loop_order: Vec<usize> = (0..an.loops.loops.len()).collect();
        loop_order.sort_by_key(|&i| std::cmp::Reverse(an.loops.loops[i].depth));
        for &li in &loop_order {
            let l = &an.loops.loops[li];
            let Some(preheader) = unique_preheader(f, &an, l) else {
                continue;
            };
            // Candidates: pure instructions in the loop whose operands are
            // all defined outside the loop.
            let mut to_move: Vec<ValueId> = Vec::new();
            for &b in &l.blocks {
                for &v in &f.block(b).instrs {
                    let Some(i) = f.instr(v) else { continue };
                    let hoistable = (i.opcode.is_pure_arith() || i.opcode == Opcode::Gep)
                        && !matches!(i.opcode, Opcode::SDiv | Opcode::SRem);
                    if !hoistable {
                        continue;
                    }
                    let invariant = i.operands.iter().all(|&op| {
                        match an.layout.block_of(op) {
                            Some(ob) => !l.contains(ob),
                            None => true, // constants / arguments
                        }
                    });
                    if invariant {
                        to_move.push(v);
                    }
                }
            }
            if to_move.is_empty() {
                continue;
            }
            for v in to_move {
                // Remove from current block, insert before preheader terminator.
                for b in f.block_ids().collect::<Vec<_>>() {
                    f.block_mut(b).instrs.retain(|&x| x != v);
                }
                let instrs = &mut f.block_mut(preheader).instrs;
                let at = instrs.len().saturating_sub(1); // before the terminator
                instrs.insert(at, v);
                moved = true;
            }
            if moved {
                break; // recompute analyses after structural change
            }
        }
        if !moved {
            return;
        }
    }
}

/// The unique predecessor of the loop header outside the loop, if the loop
/// is in canonical form (one preheader, one latch).
fn unique_preheader(f: &Function, an: &Analyses, l: &ssair::analysis::Loop) -> Option<BlockId> {
    let _ = f;
    let preds = an.cfg.preds(l.header);
    let outside: Vec<BlockId> = preds.iter().copied().filter(|p| !l.contains(*p)).collect();
    if outside.len() == 1 && l.latches.len() == 1 {
        Some(outside[0])
    } else {
        None
    }
}

/// The root object of an address: the alloca or argument the gep chain
/// starts from.
fn address_root(f: &Function, mut v: ValueId) -> ValueId {
    loop {
        match f.instr(v) {
            Some(i) if i.opcode == Opcode::Gep => v = i.operands[0],
            _ => return v,
        }
    }
}

/// Promotes single-location read-modify-write loops to register
/// accumulation:
///
/// ```text
/// for k { t = load A; t2 = f(t, ...); store t2, A }   // A loop-invariant
/// ```
///
/// becomes a phi accumulator with the load hoisted to the preheader and the
/// store sunk to the exit block. Soundness relies on the frontend's
/// restrict-parameter model: addresses rooted at distinct parameters or
/// allocas do not alias.
pub fn promote_read_modify_write(f: &mut Function) {
    loop {
        if !promote_one(f) {
            return;
        }
    }
}

fn promote_one(f: &mut Function) -> bool {
    let an = Analyses::new(f);
    for l in &an.loops.loops {
        let Some(preheader) = unique_preheader(f, &an, l) else {
            continue;
        };
        let latch = l.latches[0];
        // Canonical single exit from the header.
        let exits: Vec<BlockId> = an
            .cfg
            .succs(l.header)
            .iter()
            .copied()
            .filter(|s| !l.contains(*s))
            .collect();
        let exit_ok = exits.len() == 1 && an.cfg.preds(exits[0]).len() == 1;
        if !exit_ok {
            continue;
        }
        let exit = exits[0];
        // Gather memory operations of the loop.
        let mut loads: Vec<ValueId> = Vec::new();
        let mut stores: Vec<ValueId> = Vec::new();
        let mut has_call = false;
        for &b in &l.blocks {
            for &v in &f.block(b).instrs {
                match f.opcode(v) {
                    Some(Opcode::Load) => loads.push(v),
                    Some(Opcode::Store) => stores.push(v),
                    Some(Opcode::Call) => {
                        let callee = f.instr(v).and_then(|i| i.callee.clone());
                        let pure = callee.as_deref().is_some_and(|c| {
                            crate::lower::MATH_INTRINSICS.iter().any(|(n, _)| *n == c)
                        });
                        if !pure {
                            has_call = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        if has_call {
            continue;
        }
        for &store in &stores {
            let addr = f.instr(store).expect("store").operands[1];
            // Address must be defined outside the loop.
            if an.layout.block_of(addr).is_some_and(|b| l.contains(b)) {
                continue;
            }
            let root = address_root(f, addr);
            // The store must execute every iteration.
            let sb = an.layout.block_of(store).expect("placed");
            if !an.dom.dominates(sb, latch) {
                continue;
            }
            // No other store in the loop may alias; same-root loads must use
            // the identical address value.
            let other_store_conflicts = stores.iter().any(|&s| {
                s != store && address_root(f, f.instr(s).expect("store").operands[1]) == root
            });
            if other_store_conflicts {
                continue;
            }
            let same_addr_loads: Vec<ValueId> = loads
                .iter()
                .copied()
                .filter(|&ld| f.instr(ld).expect("load").operands[0] == addr)
                .collect();
            let aliasing_other_load = loads.iter().any(|&ld| {
                let a = f.instr(ld).expect("load").operands[0];
                a != addr && address_root(f, a) == root
            });
            if aliasing_other_load {
                continue;
            }
            // All loads must be dominated by the header (they are in the
            // loop) and must happen before the store rewrites the location
            // — guaranteed in SSA by dominance of uses; the rotation below
            // is value-accurate regardless of order because the phi carries
            // the latest value.
            let header_preds = an.cfg.preds(l.header);
            if header_preds.len() != 2 {
                continue;
            }
            let stored_value = f.instr(store).expect("store").operands[0];
            // The stored value must dominate the latch terminator.
            let latch_term = f.terminator(latch).expect("terminated");
            if f.is_instruction(stored_value) && !an.inst_dominates(stored_value, latch_term) {
                continue;
            }
            let ty = f
                .value(addr)
                .ty
                .pointee()
                .expect("store address is a pointer")
                .clone();

            // --- transform ---
            let init = f.append_simple(preheader, ty.clone(), Opcode::Load, vec![addr]);
            // Move the load before the preheader terminator.
            {
                let instrs = &mut f.block_mut(preheader).instrs;
                let v = instrs.pop().expect("just appended");
                let at = instrs.len().saturating_sub(1);
                instrs.insert(at, v);
            }
            let phi = f.append_phi(l.header, ty.clone());
            f.set_name(phi, "promoted");
            f.add_phi_incoming(phi, init, preheader);
            f.add_phi_incoming(phi, stored_value, latch);
            for ld in same_addr_loads {
                replace_all_uses(f, ld, phi);
                ssair::pass::remove_instruction(f, ld);
            }
            ssair::pass::remove_instruction(f, store);
            // Store the final value at the exit (its single pred is the header).
            let sunk = f.append_simple(exit, Type::Void, Opcode::Store, vec![phi, addr]);
            let v = f.block_mut(exit).instrs.pop().expect("just appended");
            debug_assert_eq!(v, sunk);
            // Insert after any phis at the block head.
            let mut at = 0;
            while at < f.block(exit).instrs.len()
                && matches!(f.opcode(f.block(exit).instrs[at]), Some(Opcode::Phi))
            {
                at += 1;
            }
            f.block_mut(exit).instrs.insert(at, sunk);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::{compile, compile_unoptimized};
    use ssair::{Opcode, ValueKind};

    #[test]
    fn folds_constant_arithmetic() {
        let m = compile("int f() { return 2 * 3 + 4; }", "t").unwrap();
        let f = m.function("f").unwrap();
        let entry = ssair::BlockId(0);
        assert_eq!(f.block(entry).instrs.len(), 1, "only ret remains");
        let ret = f.block(entry).instrs[0];
        let op = f.instr(ret).unwrap().operands[0];
        assert!(matches!(f.value(op).kind, ValueKind::ConstInt(10)));
    }

    #[test]
    fn folds_identities() {
        let m = compile("long f(long x) { return x * 1 + 0; }", "t").unwrap();
        let f = m.function("f").unwrap();
        let entry = ssair::BlockId(0);
        assert_eq!(f.block(entry).instrs.len(), 1, "x*1+0 folds to x");
    }

    #[test]
    fn hoists_invariant_address_math() {
        let src = "void f(double* a, int i, int n) { for (int k = 0; k < n; k++) { a[i] = a[i] + 1.0; } }";
        let m = compile(src, "t").unwrap();
        let f = m.function("f").unwrap();
        let text = format!("{f}");
        // After LICM + promotion there is exactly one load (preheader) and
        // one store (exit), and a phi accumulator in the loop header.
        let n_loads = text.matches("load double").count();
        let n_stores = text.matches("store double").count();
        assert_eq!(n_loads, 1, "{text}");
        assert_eq!(n_stores, 1, "{text}");
        assert!(text.contains("phi double"), "{text}");
    }

    #[test]
    fn promotion_produces_accumulator_phi_for_array_accumulation() {
        // The Figure-8 "second form" inner loop of GEMM.
        let src = "void f(double* c, double* a, double* b, int n, int i, int j) {
            for (int k = 0; k < n; k++)
                c[i*n+j] = c[i*n+j] + a[i*n+k] * b[k*n+j];
        }";
        let m = compile(src, "t").unwrap();
        let f = m.function("f").unwrap();
        let header = ssair::BlockId(1);
        let phis = f
            .block(header)
            .instrs
            .iter()
            .filter(|&&v| f.opcode(v) == Some(Opcode::Phi))
            .count();
        assert_eq!(phis, 2, "iterator and promoted accumulator:\n{f}");
        // The store moved to the exit block.
        let exit_has_store = f
            .block_ids()
            .filter(|&b| f.block(b).name.as_deref() == Some("loop.exit"))
            .any(|b| {
                f.block(b)
                    .instrs
                    .iter()
                    .any(|&v| f.opcode(v) == Some(Opcode::Store))
            });
        assert!(exit_has_store, "{f}");
    }

    #[test]
    fn promotion_is_blocked_by_possible_aliasing() {
        // Same root on both accesses with different indices: no promotion.
        let src = "void f(double* a, int i, int j, int n) {
            for (int k = 0; k < n; k++) a[i] = a[i] + a[j];
        }";
        let m = compile(src, "t").unwrap();
        let f = m.function("f").unwrap();
        let header_phis = f
            .block(ssair::BlockId(1))
            .instrs
            .iter()
            .filter(|&&v| f.opcode(v) == Some(Opcode::Phi))
            .count();
        assert_eq!(header_phis, 1, "only the iterator gets a phi:\n{f}");
    }

    #[test]
    fn promotion_is_blocked_for_conditional_stores() {
        let src = "void f(double* a, double* x, int i, int n) {
            for (int k = 0; k < n; k++) { if (x[k] > 0.0) { a[i] = a[i] + 1.0; } }
        }";
        let m = compile(src, "t").unwrap();
        let f = m.function("f").unwrap();
        // The store stays inside the loop (no store in any exit block).
        let exit_store = f
            .block_ids()
            .filter(|&b| f.block(b).name.as_deref() == Some("loop.exit"))
            .any(|b| {
                f.block(b)
                    .instrs
                    .iter()
                    .any(|&v| f.opcode(v) == Some(Opcode::Store))
            });
        assert!(!exit_store, "{f}");
    }

    #[test]
    fn scalar_accumulation_still_works_end_to_end() {
        let m = compile(
            "double dot(double* x, double* y, int n) { double acc = 0.0; for (int i = 0; i < n; i++) acc += x[i] * y[i]; return acc; }",
            "t",
        )
        .unwrap();
        let f = m.function("dot").unwrap();
        let header = ssair::BlockId(1);
        // acc and i phis survive optimization.
        let phis = f
            .block(header)
            .instrs
            .iter()
            .filter(|&&v| f.opcode(v) == Some(Opcode::Phi))
            .count();
        assert_eq!(phis, 2);
    }

    #[test]
    fn optimizer_output_verifies() {
        let srcs = [
            "double f(double* a, int n) { double s = 0.0; for (int i = 0; i < n; i++) { if (a[i] > 0.0) s += a[i]; } return s; }",
            "void g(double* c, double* a, double* b, int n) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { double acc = 0.0; for (int k = 0; k < n; k++) acc += a[i*n+k]*b[k*n+j]; c[i*n+j] = acc; } } }",
        ];
        for (k, s) in srcs.iter().enumerate() {
            let m = compile(s, &format!("v{k}")).unwrap();
            ssair::verify::verify_module(&m).expect("optimized IR verifies");
        }
    }

    #[test]
    fn unoptimized_vs_optimized_instruction_counts() {
        let src = "double f() { return 1.0 + 2.0 * 3.0; }";
        let u = compile_unoptimized(src, "t").unwrap();
        let o = compile(src, "t").unwrap();
        let count = |m: &ssair::Module| -> usize {
            let f = m.function("f").unwrap();
            f.block_ids().map(|b| f.block(b).instrs.len()).sum()
        };
        assert!(count(&o) < count(&u));
    }
}
