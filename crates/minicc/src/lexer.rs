//! Hand-rolled lexer for the minicc C subset.

use crate::CompileError;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal; the flag is `true` for an `f` suffix.
    Float(f64, bool),
    /// A punctuation / operator token, e.g. `"+="`, `"("`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

const PUNCTS: &[&str] = &[
    // Longest first so maximal munch works.
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "++", "--",
    "<<", ">>", "(", ")", "{", "}", "[", "]", ";", ",", "+", "-", "*", "/", "%", "<", ">", "=",
    "!", "?", ":", "&", "|", "^",
];

/// Lexes `source` into tokens (with a trailing [`Tok::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Spanned>, CompileError> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            if chars[i + 1] == '*' {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(CompileError {
                        line,
                        message: "unterminated comment".into(),
                    });
                }
                i += 2;
                continue;
            }
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Spanned {
                tok: Tok::Ident(chars[start..i].iter().collect()),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len() && chars[i].is_ascii_digit() {
                i += 1;
            }
            if i < chars.len() && chars[i] == '.' {
                is_float = true;
                i += 1;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                is_float = true;
                i += 1;
                if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                    i += 1;
                }
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            let mut f32_suffix = false;
            if i < chars.len() && (chars[i] == 'f' || chars[i] == 'F') {
                f32_suffix = true;
                is_float = true;
                i += 1;
            }
            if is_float {
                let v: f64 = text.parse().map_err(|_| CompileError {
                    line,
                    message: format!("bad float literal {text:?}"),
                })?;
                toks.push(Spanned {
                    tok: Tok::Float(v, f32_suffix),
                    line,
                });
            } else {
                let v: i64 = text.parse().map_err(|_| CompileError {
                    line,
                    message: format!("bad integer literal {text:?}"),
                })?;
                toks.push(Spanned {
                    tok: Tok::Int(v),
                    line,
                });
            }
            continue;
        }
        // Punctuation, maximal munch.
        let rest: String = chars[i..i + 3.min(chars.len() - i)].iter().collect();
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        match matched {
            Some(p) => {
                toks.push(Spanned {
                    tok: Tok::Punct(p),
                    line,
                });
                i += p.len();
            }
            None => {
                return Err(CompileError {
                    line,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_identifiers_numbers_and_puncts() {
        let ts = kinds("int x = a1 + 2.5e-1f;");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("int".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Ident("a1".into()),
                Tok::Punct("+"),
                Tok::Float(0.25, true),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn maximal_munch_on_operators() {
        let ts = kinds("a+=b++<=c&&d");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("a".into()),
                Tok::Punct("+="),
                Tok::Ident("b".into()),
                Tok::Punct("++"),
                Tok::Punct("<="),
                Tok::Ident("c".into()),
                Tok::Punct("&&"),
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let toks = lex("a // one\n/* two\nthree */ b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3, "b is on line 3");
    }

    #[test]
    fn float_without_leading_digit() {
        let ts = kinds("x = .5;");
        assert!(ts.contains(&Tok::Float(0.5, false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("int $x;").is_err());
    }
}
