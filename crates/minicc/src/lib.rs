//! # minicc — a C-subset frontend for ssair
//!
//! The ASPLOS'18 paper compiles C/C++ benchmarks with clang to optimized
//! LLVM IR before running idiom detection. This crate plays clang's role
//! for the workspace: it compiles a small but expressive C subset to
//! [`ssair`] SSA form and runs a mid-level optimizer so that the IR reaching
//! the detector has the canonical shapes clang -O2 would produce (register
//! accumulators, rotated loops with header comparisons and latch
//! increments, promoted read-modify-write arrays).
//!
//! Supported language (enough for the 21 NAS/Parboil benchmark
//! reconstructions in `benchsuite`):
//!
//! * types: `int` (i32), `long` (i64), `float`, `double`, pointers, `void`
//! * functions with value and pointer parameters
//! * local scalars and fixed-size (multi-dimensional) local arrays
//! * `if`/`else`, `while`, `for`, `return`, compound statements
//! * assignments including `+=` etc., `++`/`--` as statements and in
//!   `for` steps
//! * arithmetic, comparisons, `&&`/`||`/`!` (lowered bitwise on `i1`),
//!   ternary `?:` (lowered to `select`), casts, calls to math intrinsics
//!   (`sqrt`, `fabs`, `exp`, `log`, `sin`, `cos`, `pow`, `fmin`, `fmax`)
//!   and to other functions in the same translation unit
//!
//! Pointer parameters are treated as `restrict` (no two parameters alias),
//! exactly as the benchmarks guarantee; this is what licenses the
//! read-modify-write promotion that clang performs via TBAA + LICM.
//!
//! ## Entry points
//!
//! ```
//! let src = "double dot(double* x, double* y, int n) {
//!     double acc = 0.0;
//!     for (int i = 0; i < n; i++) acc += x[i] * y[i];
//!     return acc;
//! }";
//! let module = minicc::compile(src, "dot_unit").expect("compiles");
//! assert!(module.function("dot").is_some());
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod parse;
pub mod pretty;

use ssair::Module;

/// A frontend failure (lexing, parsing, typing or lowering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles `source` to an optimized, verified SSA module named `name`.
///
/// This is the equivalent of the paper's `clang -O2 -emit-llvm` step: the
/// result is the IR that idiom detection and the baseline detectors run on.
pub fn compile(source: &str, name: &str) -> Result<Module, CompileError> {
    let mut module = compile_unoptimized(source, name)?;
    opt::optimize_module(&mut module);
    debug_assert_verified(&module);
    Ok(module)
}

/// Compiles without the optimizer (used by optimizer tests and by the
/// compile-time measurements of Table 2, which separate frontend cost from
/// detection cost).
pub fn compile_unoptimized(source: &str, name: &str) -> Result<Module, CompileError> {
    let program = parse::parse_program(source)?;
    let module = lower::lower_program(&program, name)?;
    debug_assert_verified(&module);
    Ok(module)
}

fn debug_assert_verified(module: &Module) {
    if cfg!(debug_assertions) {
        if let Err(errs) = ssair::verify::verify_module(module) {
            panic!(
                "frontend produced invalid IR: {}\n{}",
                errs.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
                ssair::printer::print_module(module)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn doc_example_compiles() {
        let m = super::compile(
            "double dot(double* x, double* y, int n) { double acc = 0.0; for (int i = 0; i < n; i++) acc += x[i] * y[i]; return acc; }",
            "t",
        )
        .unwrap();
        assert!(m.function("dot").is_some());
    }
}
