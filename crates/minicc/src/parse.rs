//! Recursive-descent parser for the minicc C subset.

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};
use crate::CompileError;

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

type Result<T> = std::result::Result<T, CompileError>;

/// Parses a whole translation unit.
pub fn parse_program(source: &str) -> Result<Program> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    while !matches!(p.peek(), Tok::Eof) {
        prog.funcs.push(p.funcdef()?);
    }
    Ok(prog)
}

const TYPE_KEYWORDS: &[&str] = &["int", "long", "float", "double", "void"];

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), Tok::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected {p:?}, got {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(CompileError {
                line,
                message: format!("expected identifier, got {other:?}"),
            }),
        }
    }

    fn at_type(&self) -> bool {
        matches!(self.peek(), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
    }

    fn base_type(&mut self) -> Result<CType> {
        let name = self.ident()?;
        let mut ty = match name.as_str() {
            "int" => CType::Int,
            "long" => CType::Long,
            "float" => CType::Float,
            "double" => CType::Double,
            "void" => CType::Void,
            other => return Err(self.err(format!("unknown type {other:?}"))),
        };
        while self.eat_punct("*") {
            ty = ty.ptr_to();
        }
        Ok(ty)
    }

    fn funcdef(&mut self) -> Result<FuncDef> {
        let line = self.line();
        let ret = self.base_type()?;
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let pty = self.base_type()?;
                let pname = self.ident()?;
                params.push((pname, pty));
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("{")?;
        let body = self.block_body()?;
        Ok(FuncDef {
            name,
            params,
            ret,
            body,
            line,
        })
    }

    /// Statements up to and including the closing `}`.
    fn block_body(&mut self) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), Tok::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        if self.eat_punct("{") {
            return Ok(Stmt::Block(self.block_body()?));
        }
        if let Tok::Ident(kw) = self.peek() {
            match kw.as_str() {
                "if" => return self.if_stmt(),
                "while" => return self.while_stmt(),
                "for" => return self.for_stmt(),
                "return" => {
                    self.bump();
                    if self.eat_punct(";") {
                        return Ok(Stmt::Return(None, line));
                    }
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    return Ok(Stmt::Return(Some(e), line));
                }
                _ if self.at_type() => {
                    let d = self.decl()?;
                    self.expect_punct(";")?;
                    return Ok(d);
                }
                _ => {}
            }
        }
        let s = self.assign_or_expr()?;
        self.expect_punct(";")?;
        Ok(s)
    }

    fn decl(&mut self) -> Result<Stmt> {
        let line = self.line();
        let ty = self.base_type()?;
        let name = self.ident()?;
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            match self.bump() {
                Tok::Int(n) if n > 0 => dims.push(n as usize),
                other => {
                    return Err(self.err(format!(
                        "array dimension must be a positive integer literal, got {other:?}"
                    )))
                }
            }
            self.expect_punct("]")?;
        }
        let init = if self.eat_punct("=") {
            if !dims.is_empty() {
                return Err(self.err("array initializers are not supported"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Decl {
            name,
            ty,
            dims,
            init,
            line,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.bump(); // if
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then = self.stmt_as_block()?;
        let other = if matches!(self.peek(), Tok::Ident(k) if k == "else") {
            self.bump();
            self.stmt_as_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then, other })
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        self.bump(); // while
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        self.bump(); // for
        self.expect_punct("(")?;
        let init = if self.eat_punct(";") {
            None
        } else {
            let s = if self.at_type() {
                self.decl()?
            } else {
                self.assign_or_expr()?
            };
            self.expect_punct(";")?;
            Some(Box::new(s))
        };
        let cond = if self.eat_punct(";") {
            None
        } else {
            let e = self.expr()?;
            self.expect_punct(";")?;
            Some(e)
        };
        let step = if self.eat_punct(")") {
            None
        } else {
            let s = self.assign_or_expr()?;
            self.expect_punct(")")?;
            Some(Box::new(s))
        };
        let body = self.stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn stmt_as_block(&mut self) -> Result<Vec<Stmt>> {
        if self.eat_punct("{") {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    /// Assignment, `++`/`--`, or bare expression (no trailing `;`).
    fn assign_or_expr(&mut self) -> Result<Stmt> {
        let line = self.line();
        // Pre-increment as a statement: ++i; --i;
        for (p, op) in [("++", BinOp::Add), ("--", BinOp::Sub)] {
            if matches!(self.peek(), Tok::Punct(q) if *q == p) {
                self.bump();
                let target = self.lvalue()?;
                return Ok(Stmt::Assign {
                    target,
                    op: Some(op),
                    value: Expr::IntLit(1),
                    line,
                });
            }
        }
        let e = self.expr()?;
        let as_lvalue = |e: &Expr| -> Option<LValue> {
            match e {
                Expr::Var(n) => Some(LValue::Var(n.clone())),
                Expr::Index { base, indices } => Some(LValue::Index {
                    base: base.clone(),
                    indices: indices.clone(),
                }),
                _ => None,
            }
        };
        let compound = [
            ("=", None),
            ("+=", Some(BinOp::Add)),
            ("-=", Some(BinOp::Sub)),
            ("*=", Some(BinOp::Mul)),
            ("/=", Some(BinOp::Div)),
            ("%=", Some(BinOp::Rem)),
        ];
        for (p, op) in compound {
            if matches!(self.peek(), Tok::Punct(q) if *q == p) {
                self.bump();
                let target = as_lvalue(&e)
                    .ok_or_else(|| self.err("left-hand side of assignment is not assignable"))?;
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    target,
                    op,
                    value,
                    line,
                });
            }
        }
        for (p, op) in [("++", BinOp::Add), ("--", BinOp::Sub)] {
            if matches!(self.peek(), Tok::Punct(q) if *q == p) {
                self.bump();
                let target =
                    as_lvalue(&e).ok_or_else(|| self.err("operand of ++/-- is not assignable"))?;
                return Ok(Stmt::Assign {
                    target,
                    op: Some(op),
                    value: Expr::IntLit(1),
                    line,
                });
            }
        }
        Ok(Stmt::Expr(e, line))
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let name = self.ident()?;
        let mut indices = Vec::new();
        while self.eat_punct("[") {
            indices.push(self.expr()?);
            self.expect_punct("]")?;
        }
        if indices.is_empty() {
            Ok(LValue::Var(name))
        } else {
            Ok(LValue::Index {
                base: name,
                indices,
            })
        }
    }

    // ----- expressions, precedence climbing -----

    fn expr(&mut self) -> Result<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr> {
        let cond = self.or_expr()?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let other = self.ternary()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                other: Box::new(other),
            })
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.equality()?;
        while self.eat_punct("&&") {
            let rhs = self.equality()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr> {
        let mut lhs = self.relational()?;
        loop {
            let op = if self.eat_punct("==") {
                CmpOp::Eq
            } else if self.eat_punct("!=") {
                CmpOp::Ne
            } else {
                return Ok(lhs);
            };
            let rhs = self.relational()?;
            lhs = Expr::Cmp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn relational(&mut self) -> Result<Expr> {
        let mut lhs = self.additive()?;
        loop {
            let op = if self.eat_punct("<=") {
                CmpOp::Le
            } else if self.eat_punct(">=") {
                CmpOp::Ge
            } else if self.eat_punct("<") {
                CmpOp::Lt
            } else if self.eat_punct(">") {
                CmpOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.additive()?;
            lhs = Expr::Cmp(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = if self.eat_punct("+") {
                BinOp::Add
            } else if self.eat_punct("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.multiplicative()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = if self.eat_punct("*") {
                BinOp::Mul
            } else if self.eat_punct("/") {
                BinOp::Div
            } else if self.eat_punct("%") {
                BinOp::Rem
            } else {
                return Ok(lhs);
            };
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary()?)));
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        // Cast: '(' type ')' unary — lookahead for a type keyword.
        if matches!(self.peek(), Tok::Punct("("))
            && matches!(self.peek2(), Tok::Ident(s) if TYPE_KEYWORDS.contains(&s.as_str()))
        {
            self.bump(); // (
            let ty = self.base_type()?;
            self.expect_punct(")")?;
            let expr = self.unary()?;
            return Ok(Expr::Cast {
                ty,
                expr: Box::new(expr),
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                match e {
                    Expr::Var(name) => {
                        e = Expr::Index {
                            base: name,
                            indices: vec![idx],
                        }
                    }
                    Expr::Index { base, mut indices } => {
                        indices.push(idx);
                        e = Expr::Index { base, indices };
                    }
                    _ => return Err(self.err("can only index variables")),
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v, f32_suffix) => Ok(Expr::FloatLit(v, f32_suffix)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(CompileError {
                line,
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_function_with_loop() {
        let p = parse_program(
            "double dot(double* x, double* y, int n) { double acc = 0.0; for (int i = 0; i < n; i++) { acc += x[i] * y[i]; } return acc; }",
        )
        .unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.name, "dot");
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.params[0].1, CType::Double.ptr_to());
        assert!(matches!(f.body[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_precedence() {
        let p = parse_program("int f(int a, int b) { return a + b * 2 < 10 && a != b; }").unwrap();
        let Stmt::Return(Some(e), _) = &p.funcs[0].body[0] else {
            panic!("expected return")
        };
        // (a + (b*2) < 10) && (a != b)
        assert!(matches!(e, Expr::And(_, _)));
    }

    #[test]
    fn parses_multidim_arrays_and_casts() {
        let p =
            parse_program("void f(int n) { double A[4][8]; A[1][2] = (double)n; A[0][0] += 1.0; }")
                .unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(&body[0], Stmt::Decl { dims, .. } if dims == &vec![4, 8]));
        assert!(
            matches!(&body[1], Stmt::Assign { target: LValue::Index { indices, .. }, value: Expr::Cast { .. }, .. } if indices.len() == 2)
        );
        assert!(matches!(
            &body[2],
            Stmt::Assign {
                op: Some(BinOp::Add),
                ..
            }
        ));
    }

    #[test]
    fn parses_ternary_calls_and_unaries() {
        let p = parse_program("double f(double x) { return x > 0.0 ? sqrt(x) : -x; }").unwrap();
        let Stmt::Return(Some(Expr::Ternary { then, .. }), _) = &p.funcs[0].body[0] else {
            panic!("expected ternary return")
        };
        assert!(matches!(**then, Expr::Call { .. }));
    }

    #[test]
    fn parses_for_variants() {
        let p = parse_program(
            "void f(int n) { int s = 0; for (;;) { s += 1; } for (s = 0; s < n;) ++s; }",
        )
        .unwrap();
        let body = &p.funcs[0].body;
        assert!(matches!(
            &body[1],
            Stmt::For {
                init: None,
                cond: None,
                step: None,
                ..
            }
        ));
        assert!(matches!(
            &body[2],
            Stmt::For {
                init: Some(_),
                cond: Some(_),
                step: None,
                ..
            }
        ));
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse_program("int f() {\n  return 1 +;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_assignment_to_rvalue() {
        let err = parse_program("void f(int a) { a + 1 = 2; }").unwrap_err();
        assert!(err.message.contains("not assignable"));
    }
}
