//! LLVM-flavoured textual printing of modules and functions.
//!
//! The output is designed to round-trip through [`crate::parser`]: printing
//! a parsed module and re-parsing it yields a structurally identical module.
//! This is exercised by property tests in the parser module.

use crate::function::{BlockId, Function, Instr, Opcode, ValueId, ValueKind};
use crate::module::Module;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Assigns every value and block a unique textual name, preferring
/// source-level names and falling back to numeric ids.
pub struct Namer {
    values: HashMap<ValueId, String>,
    blocks: HashMap<BlockId, String>,
}

impl Namer {
    /// Builds a namer for `f` with globally unique names.
    #[must_use]
    pub fn new(f: &Function) -> Namer {
        let mut used = std::collections::HashSet::new();
        let mut values = HashMap::new();
        for id in f.value_ids() {
            if f.is_constant(id) {
                continue; // constants are printed as literals
            }
            let base = match &f.value(id).name {
                Some(n) => n.clone(),
                None => format!("v{}", id.0),
            };
            let mut name = base.clone();
            let mut k = 0u32;
            while !used.insert(name.clone()) {
                k += 1;
                name = format!("{base}.{k}");
            }
            values.insert(id, name);
        }
        let mut bused = std::collections::HashSet::new();
        let mut blocks = HashMap::new();
        for b in f.block_ids() {
            let base = match &f.block(b).name {
                Some(n) => n.clone(),
                None => format!("bb{}", b.0),
            };
            let mut name = base.clone();
            let mut k = 0u32;
            while !bused.insert(name.clone()) {
                k += 1;
                name = format!("{base}.{k}");
            }
            blocks.insert(b, name);
        }
        Namer { values, blocks }
    }

    /// The unique name of `id` (without the `%` sigil).
    #[must_use]
    pub fn value(&self, id: ValueId) -> &str {
        &self.values[&id]
    }

    /// The unique label of `b`.
    #[must_use]
    pub fn block(&self, b: BlockId) -> &str {
        &self.blocks[&b]
    }
}

/// Prints a float constant so that it parses back to the same bit pattern.
fn float_literal(v: f64) -> String {
    if v.is_nan() {
        "nan".to_owned()
    } else if v.is_infinite() {
        if v > 0.0 {
            "inf".to_owned()
        } else {
            "-inf".to_owned()
        }
    } else {
        let s = format!("{v:?}"); // shortest round-trip form
        s
    }
}

fn operand(f: &Function, namer: &Namer, id: ValueId) -> String {
    match &f.value(id).kind {
        ValueKind::ConstInt(v) => format!("{v}"),
        ValueKind::ConstFloat(v) => float_literal(*v),
        _ => format!("%{}", namer.value(id)),
    }
}

fn typed_operand(f: &Function, namer: &Namer, id: ValueId) -> String {
    format!("{} {}", f.value(id).ty, operand(f, namer, id))
}

/// Renders one instruction (without trailing newline).
fn instr_text(f: &Function, namer: &Namer, id: ValueId, i: &Instr) -> String {
    let ty = &f.value(id).ty;
    let lhs = if *ty == Type::Void {
        String::new()
    } else {
        format!("%{} = ", namer.value(id))
    };
    let ops = |k: usize| operand(f, namer, i.operands[k]);
    match i.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::SDiv
        | Opcode::SRem
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::AShr
        | Opcode::FAdd
        | Opcode::FSub
        | Opcode::FMul
        | Opcode::FDiv => {
            format!("{lhs}{} {} {}, {}", i.opcode.mnemonic(), ty, ops(0), ops(1))
        }
        Opcode::ICmp(p) => {
            let oty = &f.value(i.operands[0]).ty;
            format!("{lhs}icmp {} {} {}, {}", p.mnemonic(), oty, ops(0), ops(1))
        }
        Opcode::FCmp(p) => {
            let oty = &f.value(i.operands[0]).ty;
            format!("{lhs}fcmp {} {} {}, {}", p.mnemonic(), oty, ops(0), ops(1))
        }
        Opcode::Select => {
            format!("{lhs}select i1 {}, {} {}, {}", ops(0), ty, ops(1), ops(2))
        }
        Opcode::Gep => {
            let pty = &f.value(i.operands[0]).ty;
            let ety = pty.pointee().expect("gep base must be pointer");
            format!(
                "{lhs}getelementptr {ety}, {pty} {}, {} {}",
                ops(0),
                f.value(i.operands[1]).ty,
                ops(1)
            )
        }
        Opcode::Load => {
            let pty = &f.value(i.operands[0]).ty;
            format!("{lhs}load {ty}, {pty} {}", ops(0))
        }
        Opcode::Store => {
            format!(
                "store {}, {}",
                typed_operand(f, namer, i.operands[0]),
                typed_operand(f, namer, i.operands[1])
            )
        }
        Opcode::Phi => {
            let mut s = format!("{lhs}phi {ty} ");
            for (k, (&v, &b)) in i.operands.iter().zip(&i.incoming).enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[ {}, %{} ]", operand(f, namer, v), namer.block(b));
            }
            s
        }
        Opcode::Br => format!("br label %{}", namer.block(i.targets[0])),
        Opcode::CondBr => format!(
            "br i1 {}, label %{}, label %{}",
            ops(0),
            namer.block(i.targets[0]),
            namer.block(i.targets[1])
        ),
        Opcode::Ret => {
            if i.operands.is_empty() {
                "ret void".to_owned()
            } else {
                format!("ret {}", typed_operand(f, namer, i.operands[0]))
            }
        }
        Opcode::Call => {
            let args: Vec<String> = i
                .operands
                .iter()
                .map(|&a| typed_operand(f, namer, a))
                .collect();
            format!(
                "{lhs}call {ty} @{}({})",
                i.callee.as_deref().unwrap_or("?"),
                args.join(", ")
            )
        }
        Opcode::Alloca => {
            let ety = ty.pointee().expect("alloca result must be pointer");
            format!(
                "{lhs}alloca {ety}, {}",
                typed_operand(f, namer, i.operands[0])
            )
        }
        Opcode::SExt
        | Opcode::ZExt
        | Opcode::Trunc
        | Opcode::SIToFP
        | Opcode::FPToSI
        | Opcode::FPExt
        | Opcode::FPTrunc => {
            format!(
                "{lhs}{} {} to {ty}",
                i.opcode.mnemonic(),
                typed_operand(f, namer, i.operands[0])
            )
        }
    }
}

/// Prints a function in LLVM-flavoured text.
#[must_use]
pub fn print_function(f: &Function) -> String {
    let namer = Namer::new(f);
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|&p| format!("{} %{}", f.value(p).ty, namer.value(p)))
        .collect();
    let _ = writeln!(
        out,
        "define {} @{}({}) {{",
        f.ret_ty,
        f.name,
        params.join(", ")
    );
    for b in f.block_ids() {
        let _ = writeln!(out, "{}:", namer.block(b));
        for &id in &f.block(b).instrs {
            if let ValueKind::Instr(i) = &f.value(id).kind {
                let _ = writeln!(out, "  {}", instr_text(f, &namer, id, i));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Prints an entire module.
#[must_use]
pub fn print_module(m: &Module) -> String {
    let mut out = format!("; module {}\n", m.name);
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

impl std::fmt::Display for Function {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_function(self))
    }
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{BlockId, Opcode};

    #[test]
    fn prints_the_paper_example() {
        // Figure 3 of the paper: example(a, b, c) = a*b + c*a
        let mut f = Function::new(
            "example",
            &[
                ("a".into(), Type::I32),
                ("b".into(), Type::I32),
                ("c".into(), Type::I32),
            ],
            Type::I32,
        );
        let e = BlockId(0);
        let (a, b, c) = (f.params[0], f.params[1], f.params[2]);
        let m1 = f.append_simple(e, Type::I32, Opcode::Mul, vec![a, b]);
        let m2 = f.append_simple(e, Type::I32, Opcode::Mul, vec![c, a]);
        let s = f.append_simple(e, Type::I32, Opcode::Add, vec![m1, m2]);
        f.append_ret(e, Some(s));
        let text = print_function(&f);
        assert!(text.contains("define i32 @example(i32 %a, i32 %b, i32 %c)"));
        assert!(text.contains("mul i32 %a, %b"));
        assert!(text.contains("mul i32 %c, %a"));
        assert!(text.contains("add i32 %v3, %v4"));
        assert!(text.contains("ret i32 %v5"));
    }

    #[test]
    fn duplicate_names_are_disambiguated() {
        let mut f = Function::new("dup", &[("x".into(), Type::I32)], Type::I32);
        let e = BlockId(0);
        let x = f.params[0];
        let a = f.append_simple(e, Type::I32, Opcode::Add, vec![x, x]);
        f.set_name(a, "x");
        let b = f.append_simple(e, Type::I32, Opcode::Add, vec![a, x]);
        f.set_name(b, "x");
        f.append_ret(e, Some(b));
        let namer = Namer::new(&f);
        let names: std::collections::HashSet<&str> =
            [namer.value(x), namer.value(a), namer.value(b)].into();
        assert_eq!(names.len(), 3, "all names must be unique");
    }

    #[test]
    fn float_literals_round_trip() {
        for v in [0.0, -0.0, 1.0, 0.1, 1e-300, f64::INFINITY] {
            let s = float_literal(v);
            let parsed: f64 = match s.as_str() {
                "inf" => f64::INFINITY,
                "-inf" => f64::NEG_INFINITY,
                other => other.parse().unwrap(),
            };
            assert_eq!(parsed.to_bits(), v.to_bits(), "literal {s}");
        }
        assert_eq!(float_literal(f64::NAN), "nan");
    }
}
