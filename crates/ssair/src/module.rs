//! Modules: named collections of functions, the unit of compilation,
//! detection and transformation.

use crate::function::Function;

/// A translation unit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Module name (usually the source file stem).
    pub name: String,
    /// The functions, in definition order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Adds a function and returns its index.
    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// Looks up a function by symbol name.
    #[must_use]
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup by symbol name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("unit");
        m.add_function(Function::new("alpha", &[], Type::Void));
        m.add_function(Function::new("beta", &[], Type::I32));
        assert!(m.function("alpha").is_some());
        assert!(m.function("gamma").is_none());
        m.function_mut("beta").unwrap().name = "gamma".into();
        assert!(m.function("gamma").is_some());
    }
}
