//! Structural SSA well-formedness checks.
//!
//! The verifier catches frontend and transformation bugs early: every block
//! must end in exactly one terminator, phis must match their predecessors,
//! uses must be dominated by definitions, and operand/result types must be
//! consistent for the common instruction shapes.

use crate::analysis::Analyses;
use crate::function::{Function, Opcode};
use crate::module::Module;
use crate::types::Type;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in @{}: {}", self.function, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function of `m`.
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for f in &m.functions {
        if let Err(mut es) = verify_function(f) {
            errors.append(&mut es);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies one function.
pub fn verify_function(f: &Function) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    macro_rules! err {
        ($($arg:tt)*) => {
            errors.push(VerifyError { function: f.name.clone(), message: format!($($arg)*) })
        };
    }

    // Block structure: non-empty, exactly one terminator, at the end.
    for b in f.block_ids() {
        let instrs = &f.block(b).instrs;
        if instrs.is_empty() {
            err!("block {b} is empty");
            continue;
        }
        for (pos, &v) in instrs.iter().enumerate() {
            let Some(i) = f.instr(v) else {
                err!("block {b} lists non-instruction value {v}");
                continue;
            };
            let is_last = pos + 1 == instrs.len();
            if i.opcode.is_terminator() != is_last {
                err!(
                    "block {b}: {} at position {pos} (of {}): terminators must be last and only last",
                    i.opcode.mnemonic(),
                    instrs.len()
                );
            }
            if i.opcode == Opcode::Phi
                && instrs[..pos]
                    .iter()
                    .any(|&p| f.opcode(p) != Some(Opcode::Phi))
            {
                err!("block {b}: phi {v} after non-phi instruction");
            }
        }
    }
    if !errors.is_empty() {
        return Err(errors); // analyses below need structural sanity
    }

    let an = Analyses::new(f);

    for b in f.block_ids() {
        if !an.cfg.is_reachable(b) {
            err!("block {b} is unreachable");
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    for b in f.block_ids() {
        for &v in &f.block(b).instrs {
            let i = f.instr(v).expect("checked above");
            // Phi incoming edges must exactly match CFG predecessors.
            if i.opcode == Opcode::Phi {
                let preds = an.cfg.preds(b);
                if i.incoming.len() != preds.len() || !preds.iter().all(|p| i.incoming.contains(p))
                {
                    err!(
                        "phi {v} in {b}: incoming blocks {:?} do not match predecessors {:?}",
                        i.incoming,
                        preds
                    );
                }
                if i.operands.len() != i.incoming.len() {
                    err!("phi {v}: operand/incoming arity mismatch");
                }
            }
            // Dominance: each use must be dominated by its definition.
            for (k, &op) in i.operands.iter().enumerate() {
                if !f.is_instruction(op) {
                    continue;
                }
                let ok = if i.opcode == Opcode::Phi {
                    // Phi uses must dominate the end of the incoming block.
                    let from = i.incoming[k];
                    let term = f.terminator(from).expect("terminated block");
                    an.inst_dominates(op, term)
                } else {
                    an.inst_strictly_dominates(op, v)
                };
                if !ok {
                    err!(
                        "use of {} in {} is not dominated by its definition",
                        f.display_name(op),
                        f.display_name(v)
                    );
                }
            }
            // Simple type rules.
            verify_types(f, v, &mut errors);
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

// Collapsing the per-opcode checks into match guards would make failing
// arms fall through to `_`, losing the per-opcode error messages.
#[allow(clippy::collapsible_match)]
fn verify_types(f: &Function, v: crate::ValueId, errors: &mut Vec<VerifyError>) {
    let i = f.instr(v).expect("instruction");
    let ty = &f.value(v).ty;
    macro_rules! err {
        ($($arg:tt)*) => {
            errors.push(VerifyError { function: f.name.clone(), message: format!($($arg)*) })
        };
    }
    let opty = |k: usize| &f.value(i.operands[k]).ty;
    match i.opcode {
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::SDiv
        | Opcode::SRem
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::AShr => {
            if !ty.is_integer() || opty(0) != ty || opty(1) != ty {
                err!("integer binop {} has inconsistent types", f.display_name(v));
            }
        }
        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => {
            if !ty.is_float() || opty(0) != ty || opty(1) != ty {
                err!("float binop {} has inconsistent types", f.display_name(v));
            }
        }
        Opcode::ICmp(_) => {
            if *ty != Type::I1 || !opty(0).is_integer() && !opty(0).is_pointer() {
                err!("icmp {} has bad types", f.display_name(v));
            }
        }
        Opcode::FCmp(_) => {
            if *ty != Type::I1 || !opty(0).is_float() {
                err!("fcmp {} has bad types", f.display_name(v));
            }
        }
        Opcode::Gep => {
            if !opty(0).is_pointer() || ty != opty(0) || !opty(1).is_integer() {
                err!("gep {} has bad types", f.display_name(v));
            }
        }
        Opcode::Load => {
            if opty(0).pointee() != Some(ty) {
                err!("load {} type does not match pointer", f.display_name(v));
            }
        }
        Opcode::Store => {
            if opty(1).pointee() != Some(opty(0)) {
                err!("store {} type does not match pointer", f.display_name(v));
            }
        }
        Opcode::CondBr => {
            if *opty(0) != Type::I1 {
                err!("condbr {} condition is not i1", f.display_name(v));
            }
        }
        Opcode::Ret => {
            if let Some(&rv) = i.operands.first() {
                if f.value(rv).ty != f.ret_ty {
                    err!("ret value type does not match @{} return type", f.name);
                }
            } else if f.ret_ty != Type::Void {
                err!("ret void in non-void @{}", f.name);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{BlockId, Function};
    use crate::parser::parse_function_text;

    #[test]
    fn accepts_well_formed_loop() {
        let f = parse_function_text(
            r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
"#,
        )
        .unwrap();
        verify_function(&f).expect("verifies");
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut f = Function::new("bad", &[], Type::Void);
        let e = BlockId(0);
        let c = f.const_int(Type::I32, 1);
        f.append_simple(e, Type::I32, Opcode::Add, vec![c, c]);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("terminators")));
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad2", &[("x".into(), Type::F64)], Type::Void);
        let e = BlockId(0);
        let x = f.params[0];
        let one = f.const_int(Type::I64, 1);
        f.append_simple(e, Type::I64, Opcode::Add, vec![x, one]);
        f.append_ret(e, None);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("inconsistent")));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut f = Function::new("order", &[], Type::Void);
        let e = BlockId(0);
        let c = f.const_int(Type::I32, 1);
        // Manually create b using a value defined after it.
        let a_id = crate::ValueId(f.num_values() as u32 + 1); // will be the add below
        let b = f.append_simple(e, Type::I32, Opcode::Add, vec![c, a_id]);
        let a = f.append_simple(e, Type::I32, Opcode::Add, vec![c, c]);
        assert_eq!(a, a_id);
        let _ = b;
        f.append_ret(e, None);
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not dominated")));
    }

    #[test]
    fn rejects_phi_incoming_mismatch() {
        let f = parse_function_text(
            r#"
define void @l(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %header, label %exit
exit:
  ret void
}
"#,
        )
        .unwrap();
        let errs = verify_function(&f).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("incoming")));
    }

    #[test]
    fn verify_module_aggregates_errors() {
        let mut m = Module::new("unit");
        let mut good = Function::new("good", &[], Type::Void);
        good.append_ret(BlockId(0), None);
        m.add_function(good);
        let bad = Function::new("bad", &[], Type::Void); // empty entry block
        m.add_function(bad);
        let errs = verify_module(&m).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].function, "bad");
    }
}
