//! The ssair type system.
//!
//! A small monomorphic type system mirroring the LLVM types that the
//! benchmarks and the IDL atomic constraints (`is integer`, `is float`,
//! `is pointer`) need. Pointers carry their pointee type so that `gep`
//! can scale indices by the element size, exactly like a typed LLVM GEP.

use std::fmt;

/// A first-class ssair type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 1-bit boolean, produced by comparisons and consumed by branches.
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (also the index type of `gep`).
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE double.
    F64,
    /// Pointer to a value of the pointee type.
    Ptr(Box<Type>),
    /// The type of instructions that produce no value (`store`, `br`, ...).
    Void,
}

impl Type {
    /// Pointer to `self`.
    #[must_use]
    pub fn ptr_to(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// `true` for the integer types `i1`, `i32`, `i64`.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64)
    }

    /// `true` for `f32` and `f64`.
    #[must_use]
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// `true` for pointer types.
    #[must_use]
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The pointee type of a pointer, or `None` for non-pointers.
    #[must_use]
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// Size of a value of this type in bytes, as laid out by the
    /// interpreter's memory model (pointers are 8 bytes).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Type::I1 => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr(_) => 8,
            Type::Void => 0,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I1 => write!(f, "i1"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F32 => write!(f, "float"),
            Type::F64 => write!(f, "double"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.ptr_to().to_string(), "double*");
        assert_eq!(Type::F64.ptr_to().ptr_to().to_string(), "double**");
    }

    #[test]
    fn classification() {
        assert!(Type::I1.is_integer());
        assert!(Type::I64.is_integer());
        assert!(!Type::F32.is_integer());
        assert!(Type::F32.is_float());
        assert!(Type::I32.ptr_to().is_pointer());
        assert!(!Type::I32.is_pointer());
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I32.ptr_to().size_bytes(), 8);
        assert_eq!(Type::Void.size_bytes(), 0);
    }

    #[test]
    fn pointee() {
        let p = Type::F32.ptr_to();
        assert_eq!(p.pointee(), Some(&Type::F32));
        assert_eq!(Type::F32.pointee(), None);
    }
}
