//! # ssair — an SSA intermediate representation substrate
//!
//! This crate provides the compiler substrate that the rest of the
//! `idiomatch` workspace is built on. It is a deliberately LLVM-IR-like
//! single static assignment representation: modules contain functions,
//! functions contain basic blocks, blocks contain instructions, and every
//! instruction that produces a result *is* a value that later instructions
//! reference directly.
//!
//! The ASPLOS'18 paper this workspace reproduces ("Automatic Matching of
//! Legacy Code to Heterogeneous APIs: An Idiomatic Approach") performs idiom
//! detection on LLVM IR produced by clang. We do not bind to LLVM; instead
//! this crate implements the subset of the IR and of the standard analyses
//! (control-flow graph, dominator and post-dominator trees, natural loops,
//! def-use chains) that the Idiom Description Language's atomic constraints
//! are defined over.
//!
//! ## Layout
//!
//! * [`types`] — the type system (`i1/i32/i64/f32/f64/ptr`).
//! * [`function`] — values, instructions, basic blocks, functions and the
//!   builder API used by the `minicc` frontend.
//! * [`module`] — a translation unit: a set of functions.
//! * [`printer`] — LLVM-flavoured textual output.
//! * [`parser`] — parses the textual form back (round-trips with the
//!   printer; used heavily by tests and examples).
//! * [`analysis`] — CFG, dominators, post-dominators, loops, def-use, and
//!   the instruction-granularity flow queries IDL atomics need.
//! * [`verify`] — structural SSA well-formedness checks.
//! * [`pass`] — small transformation utilities (dead-code elimination,
//!   value replacement) used by the frontend optimizer and by the idiom
//!   replacement phase.

pub mod analysis;
pub mod function;
pub mod module;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod types;
pub mod verify;

pub use function::{BlockId, FCmpPred, Function, ICmpPred, Instr, Opcode, ValueId, ValueKind};
pub use module::Module;
pub use types::Type;
