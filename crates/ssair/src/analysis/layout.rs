//! Placement tables: which block an instruction lives in and at what
//! position. Computed once so that dominance and flow queries are O(1).

use crate::function::{BlockId, Function, ValueId};
use std::collections::HashMap;

/// Instruction placement lookup.
pub struct Layout {
    block_of: HashMap<ValueId, BlockId>,
    position: HashMap<ValueId, usize>,
}

impl Layout {
    /// Builds the placement tables for `f`.
    #[must_use]
    pub fn new(f: &Function) -> Layout {
        let mut block_of = HashMap::new();
        let mut position = HashMap::new();
        for b in f.block_ids() {
            for (pos, &v) in f.block(b).instrs.iter().enumerate() {
                block_of.insert(v, b);
                position.insert(v, pos);
            }
        }
        Layout { block_of, position }
    }

    /// The block containing instruction `v`, or `None` for non-instructions.
    #[must_use]
    pub fn block_of(&self, v: ValueId) -> Option<BlockId> {
        self.block_of.get(&v).copied()
    }

    /// Position of `v` within its block (0 = first). Panics on
    /// non-instructions; call [`Layout::block_of`] first.
    #[must_use]
    pub fn position(&self, v: ValueId) -> usize {
        self.position[&v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    #[test]
    fn placement_matches_block_contents() {
        let f = parse_function_text(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  %y = add i32 %x, 2\n  ret i32 %y\n}\n",
        )
        .unwrap();
        let l = Layout::new(&f);
        let entry = crate::BlockId(0);
        let x = f.block(entry).instrs[0];
        let y = f.block(entry).instrs[1];
        assert_eq!(l.block_of(x), Some(entry));
        assert_eq!(l.position(x), 0);
        assert_eq!(l.position(y), 1);
        // Arguments and constants have no placement.
        assert_eq!(l.block_of(f.params[0]), None);
    }
}
