//! Path-sensitive flow queries for the IDL atomics
//! `all control flow from A to B passes through C` and
//! `all data flow from A to B passes through C`.
//!
//! Both are answered by deletion + reachability: every path from `a` to
//! `b` passes through `c` iff `b` is unreachable from `a` once `c` is
//! removed from the graph. Paths have length at least one edge, so the
//! queries are meaningful even when `a == b` (e.g. cyclic control flow in
//! the SESE idiom). When `c` equals `a` or `b` the answer is trivially
//! `true` — the endpoint itself is on every path.

use super::Analyses;
use crate::function::{Function, ValueId, ValueKind};
use std::collections::HashSet;

/// `true` iff every instruction-level control-flow path from `a` to `b`
/// (of length ≥ 1) passes through `c`.
#[must_use]
pub fn all_control_flow_passes_through(
    f: &Function,
    an: &Analyses,
    a: ValueId,
    b: ValueId,
    c: ValueId,
) -> bool {
    if c == a || c == b {
        return true;
    }
    // BFS from a's successors, never expanding c.
    let mut seen: HashSet<ValueId> = HashSet::new();
    let mut stack: Vec<ValueId> = an
        .control_flow_successors(f, a)
        .into_iter()
        .filter(|&s| s != c)
        .collect();
    while let Some(v) = stack.pop() {
        if v == b {
            return false; // found a path avoiding c
        }
        if !seen.insert(v) {
            continue;
        }
        for s in an.control_flow_successors(f, v) {
            if s != c && !seen.contains(&s) {
                stack.push(s);
            }
        }
    }
    true
}

/// `true` iff every def-use (data-flow) path from `a` to `b` (length ≥ 1)
/// passes through `c`. Data flow follows operand-to-user edges only; memory
/// is not traversed.
#[must_use]
pub fn all_data_flow_passes_through(
    _f: &Function,
    an: &Analyses,
    a: ValueId,
    b: ValueId,
    c: ValueId,
) -> bool {
    if c == a || c == b {
        return true;
    }
    let mut seen: HashSet<ValueId> = HashSet::new();
    let mut stack: Vec<ValueId> = an
        .defuse
        .users(a)
        .iter()
        .copied()
        .filter(|&u| u != c)
        .collect();
    while let Some(v) = stack.pop() {
        if v == b {
            return false;
        }
        if !seen.insert(v) {
            continue;
        }
        for &u in an.defuse.users(v) {
            if u != c && !seen.contains(&u) {
                stack.push(u);
            }
        }
    }
    true
}

/// `true` iff every backward data-flow path from `sink` terminates at one
/// of `killers`, a constant, or a function argument, traversing only pure
/// arithmetic instructions (and calls to the pure math intrinsics in
/// `pure_calls`).
///
/// This implements the varlist atomic `all flow to {sink} is killed by
/// {killers}` used by the `KernelFunction` building block: it guarantees
/// the kernel value is a detachable pure function of its declared inputs,
/// which is what makes histogram/reduction/stencil kernels extractable
/// (§4.2, §6.2 of the paper).
#[must_use]
pub fn backward_slice_killed_by(
    f: &Function,
    sink: ValueId,
    killers: &[ValueId],
    pure_calls: &[&str],
) -> bool {
    kernel_slice(f, sink, killers, pure_calls).is_some()
}

/// The pure backward slice of `sink` up to `killers` (exclusive), in
/// arbitrary order, or `None` if the slice is not a pure function of the
/// killers. `sink` itself is included unless it is a killer.
#[must_use]
pub fn kernel_slice(
    f: &Function,
    sink: ValueId,
    killers: &[ValueId],
    pure_calls: &[&str],
) -> Option<Vec<ValueId>> {
    let mut slice = Vec::new();
    let mut seen: HashSet<ValueId> = HashSet::new();
    let mut stack = vec![sink];
    while let Some(v) = stack.pop() {
        if killers.contains(&v) || !seen.insert(v) {
            continue;
        }
        match &f.value(v).kind {
            ValueKind::ConstInt(_) | ValueKind::ConstFloat(_) | ValueKind::Argument { .. } => {}
            ValueKind::Instr(i) => {
                let pure_call = i.opcode == crate::Opcode::Call
                    && i.callee.as_deref().is_some_and(|c| pure_calls.contains(&c));
                if !(i.opcode.is_pure_arith() || pure_call) {
                    return None; // impure instruction inside the slice
                }
                slice.push(v);
                for &op in &i.operands {
                    stack.push(op);
                }
            }
        }
    }
    Some(slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyses;
    use crate::parser::parse_function_text;

    fn get(f: &Function, name: &str) -> ValueId {
        f.named(name)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    const LOOP: &str = r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %i
}
"#;

    #[test]
    fn control_flow_cut_points() {
        let f = parse_function_text(LOOP).unwrap();
        let an = Analyses::new(&f);
        let i = get(&f, "i");
        let cond = get(&f, "cond");
        let i_next = get(&f, "i.next");
        // Flow from the latch body back to the phi must pass the latch br
        // and the phi... the only path latch->header goes through the
        // header's first instruction, which IS %i; check an interior cut:
        assert!(all_control_flow_passes_through(&f, &an, i, i_next, cond));
        // cond is NOT on the path from i.next back to i (path goes
        // i.next -> br -> header phi).
        assert!(!all_control_flow_passes_through(&f, &an, i_next, i, cond));
        // Endpoint cases are trivially true.
        assert!(all_control_flow_passes_through(&f, &an, i, cond, i));
        assert!(all_control_flow_passes_through(&f, &an, i, cond, cond));
    }

    #[test]
    fn data_flow_cut_points() {
        let f = parse_function_text(
            "define i32 @g(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  %y = mul i32 %x, %x\n  %z = add i32 %y, %a\n  ret i32 %z\n}\n",
        )
        .unwrap();
        let an = Analyses::new(&f);
        let a = f.params[0];
        let x = get(&f, "x");
        let y = get(&f, "y");
        let z = get(&f, "z");
        // All data flow from x to z passes through y.
        assert!(all_data_flow_passes_through(&f, &an, x, z, y));
        // But a reaches z directly, bypassing x and y.
        assert!(!all_data_flow_passes_through(&f, &an, a, z, y));
    }

    #[test]
    fn kernel_slice_accepts_pure_and_rejects_memory() {
        let f = parse_function_text(
            r#"
define double @k(double* %p, double %u, double %v) {
entry:
  %m = fmul double %u, %v
  %s = fadd double %m, 1.0
  %x = load double, double* %p
  %bad = fadd double %s, %x
  ret double %bad
}
"#,
        )
        .unwrap();
        let u = f.params[1];
        let v = f.params[2];
        let s = get(&f, "s");
        let bad = get(&f, "bad");
        let x = get(&f, "x");
        // s is a pure function of u and v.
        let slice = kernel_slice(&f, s, &[u, v], &[]).expect("pure slice");
        assert_eq!(slice.len(), 2, "fmul and fadd");
        // bad pulls in a load -> not pure.
        assert!(kernel_slice(&f, bad, &[u, v], &[]).is_none());
        // Unless the load result itself is declared an input (killer).
        assert!(kernel_slice(&f, bad, &[u, v, x], &[]).is_some());
    }

    #[test]
    fn kernel_slice_allows_whitelisted_calls() {
        let f = parse_function_text(
            r#"
define double @k(double %u) {
entry:
  %r = call double @sqrt(double %u)
  %s = fadd double %r, 1.0
  ret double %s
}
"#,
        )
        .unwrap();
        let u = f.params[0];
        let s = get(&f, "s");
        assert!(kernel_slice(&f, s, &[u], &["sqrt"]).is_some());
        assert!(kernel_slice(&f, s, &[u], &[]).is_none());
    }
}
