//! Def-use chains: for every value, the instructions that use it as an
//! operand. This is the data-flow edge relation of the IDL atomic
//! `{a} has data flow to {b}`.

use crate::function::{Function, ValueId, ValueKind};
use std::collections::HashMap;

/// Def-use chains for one function.
pub struct DefUse {
    users: HashMap<ValueId, Vec<ValueId>>,
}

impl DefUse {
    /// Builds the chains for `f`. Only instructions currently placed in a
    /// block count as users (retired arena slots are ignored).
    #[must_use]
    pub fn new(f: &Function) -> DefUse {
        let mut users: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                if let ValueKind::Instr(i) = &f.value(v).kind {
                    for &op in &i.operands {
                        let us = users.entry(op).or_default();
                        if !us.contains(&v) {
                            us.push(v);
                        }
                    }
                }
            }
        }
        DefUse { users }
    }

    /// The instructions using `v` as an operand (deduplicated, in
    /// instruction creation order).
    #[must_use]
    pub fn users(&self, v: ValueId) -> &[ValueId] {
        self.users.get(&v).map_or(&[], Vec::as_slice)
    }

    /// `true` if no instruction uses `v` (the IDL atomic `is unused`).
    #[must_use]
    pub fn is_unused(&self, v: ValueId) -> bool {
        self.users(v).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    #[test]
    fn users_are_tracked_and_deduplicated() {
        let f = parse_function_text(
            "define i32 @f(i32 %a) {\nentry:\n  %sq = mul i32 %a, %a\n  %dead = add i32 %a, 1\n  ret i32 %sq\n}\n",
        )
        .unwrap();
        let du = DefUse::new(&f);
        let a = f.params[0];
        let entry = crate::BlockId(0);
        let sq = f.block(entry).instrs[0];
        let dead = f.block(entry).instrs[1];
        assert_eq!(du.users(a), &[sq, dead], "a used by mul (once) and add");
        assert!(du.is_unused(dead));
        assert!(!du.is_unused(sq), "sq is returned");
    }
}
