//! Dominator and post-dominator trees, computed with the
//! Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast Dominance
//! Algorithm"). Post-dominators are dominators of the reversed CFG rooted
//! at a virtual exit joining all `ret` blocks.

use super::cfg::Cfg;
use crate::function::BlockId;

/// A (post-)dominator tree over basic blocks.
pub struct DomTree {
    /// Immediate dominator of each block (`None` for the root and for
    /// unreachable blocks). `VIRTUAL` denotes the virtual exit used by the
    /// post-dominator tree.
    idom: Vec<Option<u32>>,
    /// The tree's root: block 0 for dominators, `VIRTUAL` for
    /// post-dominators.
    root: u32,
}

/// Node id of the virtual exit.
const VIRTUAL: u32 = u32::MAX;

impl DomTree {
    /// Builds the dominator tree of `cfg`.
    #[must_use]
    pub fn dominators(cfg: &Cfg) -> DomTree {
        let n = cfg.succs.len();
        // Order: reverse post-order from entry, nodes numbered by RPO index.
        let order: Vec<u32> = cfg.rpo.iter().map(|b| b.0).collect();
        let preds = |b: u32| -> Vec<u32> { cfg.preds(BlockId(b)).iter().map(|p| p.0).collect() };
        let idom = compute_idoms(n, 0, &order, preds);
        DomTree { idom, root: 0 }
    }

    /// Builds the post-dominator tree of `cfg`.
    #[must_use]
    pub fn post_dominators(cfg: &Cfg) -> DomTree {
        let n = cfg.succs.len();
        // Compute a genuine reverse post-order of the *reversed* graph,
        // rooted at the virtual exit (DFS over forward predecessors from
        // every exit block). Blocks that cannot reach an exit are absent.
        let mut state = vec![0u8; n];
        let mut post: Vec<u32> = Vec::new();
        for &exit in &cfg.exits {
            if state[exit.0 as usize] != 0 {
                continue;
            }
            state[exit.0 as usize] = 1;
            let mut stack: Vec<(u32, usize)> = vec![(exit.0, 0)];
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                let rsuccs = cfg.preds(BlockId(b)); // reversed-graph successors
                if *next < rsuccs.len() {
                    let s = rsuccs[*next].0;
                    *next += 1;
                    if state[s as usize] == 0 {
                        state[s as usize] = 1;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        let order: Vec<u32> = post.into_iter().rev().collect();
        // Reverse-graph predecessors are forward successors; exits also have
        // the virtual root as a reverse-predecessor.
        let exits: Vec<u32> = cfg.exits.iter().map(|b| b.0).collect();
        let preds = move |b: u32| -> Vec<u32> {
            let mut ps: Vec<u32> = cfg.succs(BlockId(b)).iter().map(|s| s.0).collect();
            if exits.contains(&b) {
                ps.push(VIRTUAL);
            }
            ps
        };
        let idom = compute_idoms(n, VIRTUAL, &order, preds);
        DomTree {
            idom,
            root: VIRTUAL,
        }
    }

    /// `true` iff `a` (post-)dominates `b`. Reflexive; `false` when either
    /// block is unreachable in the relevant direction.
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return self.is_processed(b);
        }
        let mut cur = b.0;
        loop {
            match self.idom_raw(cur) {
                Some(VIRTUAL) => return a.0 == VIRTUAL,
                Some(p) => {
                    if p == a.0 {
                        return true;
                    }
                    cur = p;
                }
                None => return false,
            }
        }
    }

    /// Strict (post-)dominance.
    #[must_use]
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The immediate dominator of `b`, or `None` for the root, the virtual
    /// exit's children, or unprocessed blocks.
    #[must_use]
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom_raw(b.0) {
            Some(VIRTUAL) | None => None,
            Some(p) => Some(BlockId(p)),
        }
    }

    fn idom_raw(&self, b: u32) -> Option<u32> {
        if b == VIRTUAL {
            return None;
        }
        self.idom[b as usize]
    }

    fn is_processed(&self, b: BlockId) -> bool {
        b.0 == self.root || self.idom[b.0 as usize].is_some()
    }
}

/// Cooper–Harvey–Kennedy fixed-point over `order` (must be a reverse
/// post-order of the graph whose predecessor function is `preds`).
fn compute_idoms(
    n: usize,
    root: u32,
    order: &[u32],
    preds: impl Fn(u32) -> Vec<u32>,
) -> Vec<Option<u32>> {
    let mut idom: Vec<Option<u32>> = vec![None; n];
    let mut rpo_num = vec![usize::MAX; n + 1];
    let num_of = |b: u32, rpo_num: &[usize]| -> usize {
        if b == VIRTUAL {
            0
        } else {
            rpo_num[b as usize]
        }
    };
    for (i, &b) in order.iter().enumerate() {
        rpo_num[b as usize] = i + 1; // virtual root gets number 0
    }
    let set_idom = |idom: &mut Vec<Option<u32>>, b: u32, v: u32| {
        if b != VIRTUAL {
            idom[b as usize] = Some(v);
        }
    };
    let get_idom = |idom: &[Option<u32>], b: u32| -> Option<u32> {
        if b == VIRTUAL {
            Some(VIRTUAL) // root is its own dominator for intersection
        } else {
            idom[b as usize]
        }
    };
    // The root dominates itself.
    if root != VIRTUAL {
        set_idom(&mut idom, root, root);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &b in order {
            if b == root {
                continue;
            }
            let mut new_idom: Option<u32> = None;
            for p in preds(b) {
                if get_idom(&idom, p).is_none() {
                    continue; // unprocessed predecessor
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(cur, p, &idom, &|x| num_of(x, &rpo_num)),
                });
            }
            if let Some(ni) = new_idom {
                if idom[b as usize] != Some(ni) {
                    idom[b as usize] = Some(ni);
                    changed = true;
                }
            }
        }
    }
    // Normalize: the root's idom is None externally.
    if root != VIRTUAL {
        idom[root as usize] = None;
    }
    idom
}

fn intersect(mut a: u32, mut b: u32, idom: &[Option<u32>], num: &dyn Fn(u32) -> usize) -> u32 {
    while a != b {
        while num(a) > num(b) {
            a = if a == VIRTUAL {
                a
            } else {
                idom[a as usize].expect("processed")
            };
        }
        while num(b) > num(a) {
            b = if b == VIRTUAL {
                b
            } else {
                idom[b as usize].expect("processed")
            };
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    const DIAMOND: &str = r#"
define i32 @d(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  ret i32 0
}
"#;

    #[test]
    fn diamond_dominators() {
        let f = parse_function_text(DIAMOND).unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let (entry, t, e, join) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        let _ = e;
        assert!(dom.dominates(entry, join));
        assert!(dom.dominates(entry, t));
        assert!(!dom.dominates(t, join), "join reachable via e");
        assert!(dom.dominates(join, join), "reflexive");
        assert!(!dom.strictly_dominates(join, join));
        assert_eq!(dom.idom(join), Some(entry));
        assert_eq!(dom.idom(t), Some(entry));
        assert_eq!(dom.idom(entry), None);
    }

    #[test]
    fn diamond_post_dominators() {
        let f = parse_function_text(DIAMOND).unwrap();
        let cfg = Cfg::new(&f);
        let pdom = DomTree::post_dominators(&cfg);
        let (entry, t, e, join) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert!(pdom.dominates(join, entry));
        assert!(pdom.dominates(join, t));
        assert!(pdom.dominates(join, e));
        assert!(!pdom.dominates(t, entry), "t is bypassable");
        assert_eq!(pdom.idom(entry), Some(join));
    }

    #[test]
    fn loop_dominators() {
        let f = parse_function_text(
            r#"
define void @l(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %j, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %j = add i64 %i, 1
  br label %header
exit:
  ret void
}
"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::post_dominators(&cfg);
        let (entry, header, body, exit) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert!(dom.dominates(header, body));
        assert!(dom.dominates(header, exit));
        assert!(!dom.dominates(body, exit));
        assert!(pdom.dominates(header, body), "body always re-enters header");
        assert!(pdom.dominates(exit, header));
        assert!(pdom.dominates(exit, entry));
        assert!(!pdom.dominates(body, header), "loop can be skipped");
    }

    #[test]
    fn multi_exit_post_dominators() {
        let f = parse_function_text(
            r#"
define i32 @m(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 2
}
"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let pdom = DomTree::post_dominators(&cfg);
        let (entry, a, b) = (BlockId(0), BlockId(1), BlockId(2));
        let _ = entry;
        assert!(!pdom.dominates(a, entry));
        assert!(!pdom.dominates(b, entry));
        assert!(pdom.dominates(a, a));
        assert_eq!(pdom.idom(entry), None, "idom of entry is the virtual exit");
    }
}
