//! Static analyses over [`crate::Function`]s.
//!
//! These are the LLVM analyses the paper's IDL atomics are evaluated
//! against: the control-flow graph, dominator and post-dominator trees,
//! natural-loop detection and def-use chains — plus the
//! instruction-granularity flow queries that IDL's control-flow model
//! requires (§3 of the paper: "Control flow in our model is evaluated on
//! the granularity of instructions").

mod affine;
mod cfg;
mod defuse;
mod dom;
mod flow;
mod layout;
mod loops;

pub use affine::{AffineAddr, AffineIndex, AffineMap, Bound, Coeff, IndVar, VRange};
pub use cfg::Cfg;
pub use defuse::DefUse;
pub use dom::DomTree;
pub use flow::{
    all_control_flow_passes_through, all_data_flow_passes_through, backward_slice_killed_by,
    kernel_slice,
};
pub use layout::Layout;
pub use loops::{Loop, LoopForest};

use crate::function::{Function, ValueId};

/// All analyses for one function, computed eagerly and cached together.
///
/// The constraint solver holds one `Analyses` per searched function; every
/// atomic-constraint evaluation is answered from these tables without
/// re-walking the IR.
pub struct Analyses {
    /// Instruction/block placement tables.
    pub layout: Layout,
    /// Block-level control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree (dominators of the reversed CFG).
    pub postdom: DomTree,
    /// Def-use chains.
    pub defuse: DefUse,
    /// Natural loops.
    pub loops: LoopForest,
}

impl Analyses {
    /// Computes all analyses for `f`.
    #[must_use]
    pub fn new(f: &Function) -> Analyses {
        let layout = Layout::new(f);
        let cfg = Cfg::new(f);
        let dom = DomTree::dominators(&cfg);
        let postdom = DomTree::post_dominators(&cfg);
        let defuse = DefUse::new(f);
        let loops = LoopForest::new(&cfg, &dom);
        Analyses {
            layout,
            cfg,
            dom,
            postdom,
            defuse,
            loops,
        }
    }

    /// Instruction-granularity dominance: `a` dominates `b` iff every path
    /// from function entry to `b` passes through `a` first. Reflexive.
    #[must_use]
    pub fn inst_dominates(&self, a: ValueId, b: ValueId) -> bool {
        let (Some(ba), Some(bb)) = (self.layout.block_of(a), self.layout.block_of(b)) else {
            return false;
        };
        if ba == bb {
            self.layout.position(a) <= self.layout.position(b)
        } else {
            self.dom.dominates(ba, bb)
        }
    }

    /// Strict instruction dominance (`a != b`).
    #[must_use]
    pub fn inst_strictly_dominates(&self, a: ValueId, b: ValueId) -> bool {
        a != b && self.inst_dominates(a, b)
    }

    /// Instruction-granularity post-dominance: every path from `a` to
    /// function exit passes through `b`... evaluated as `a` post-dominating
    /// `b` means every path from `b` to exit passes through `a`. Reflexive.
    #[must_use]
    pub fn inst_post_dominates(&self, a: ValueId, b: ValueId) -> bool {
        let (Some(ba), Some(bb)) = (self.layout.block_of(a), self.layout.block_of(b)) else {
            return false;
        };
        if ba == bb {
            self.layout.position(a) >= self.layout.position(b)
        } else {
            self.postdom.dominates(ba, bb)
        }
    }

    /// Strict instruction post-dominance (`a != b`).
    #[must_use]
    pub fn inst_strictly_post_dominates(&self, a: ValueId, b: ValueId) -> bool {
        a != b && self.inst_post_dominates(a, b)
    }

    /// Direct instruction-level control-flow edge: `b` can execute
    /// immediately after `a` — either `b` follows `a` within a block, or
    /// `a` is a terminator and `b` is the first instruction of a successor
    /// block.
    #[must_use]
    pub fn has_control_flow_edge(&self, f: &Function, a: ValueId, b: ValueId) -> bool {
        self.control_flow_successors(f, a).contains(&b)
    }

    /// The instruction-level control-flow successors of `a`.
    #[must_use]
    pub fn control_flow_successors(&self, f: &Function, a: ValueId) -> Vec<ValueId> {
        let Some(block) = self.layout.block_of(a) else {
            return Vec::new();
        };
        let pos = self.layout.position(a);
        let instrs = &f.block(block).instrs;
        if pos + 1 < instrs.len() {
            return vec![instrs[pos + 1]];
        }
        // Terminator: first instruction of each successor block.
        let mut out = Vec::new();
        if let Some(instr) = f.instr(a) {
            for &t in &instr.targets {
                if let Some(&first) = f.block(t).instrs.first() {
                    out.push(first);
                }
            }
        }
        out
    }

    /// The instruction-level control-flow predecessors of `b`.
    #[must_use]
    pub fn control_flow_predecessors(&self, f: &Function, b: ValueId) -> Vec<ValueId> {
        let Some(block) = self.layout.block_of(b) else {
            return Vec::new();
        };
        let pos = self.layout.position(b);
        if pos > 0 {
            return vec![f.block(block).instrs[pos - 1]];
        }
        self.cfg
            .preds(block)
            .iter()
            .filter_map(|&p| f.terminator(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    const LOOP: &str = r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#;

    fn get(f: &Function, name: &str) -> ValueId {
        f.named(name)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    #[test]
    fn instruction_dominance_within_and_across_blocks() {
        let f = parse_function_text(LOOP).unwrap();
        let a = Analyses::new(&f);
        let i = get(&f, "i");
        let cond = get(&f, "cond");
        let accn = get(&f, "acc.next");
        assert!(a.inst_dominates(i, cond), "same-block order");
        assert!(a.inst_dominates(i, accn), "header dominates latch");
        assert!(!a.inst_dominates(accn, i), "latch does not dominate header");
        assert!(a.inst_dominates(i, i), "reflexive");
        assert!(!a.inst_strictly_dominates(i, i));
    }

    #[test]
    fn instruction_post_dominance() {
        let f = parse_function_text(LOOP).unwrap();
        let a = Analyses::new(&f);
        let cond = get(&f, "cond");
        let i = get(&f, "i");
        let accn = get(&f, "acc.next");
        // The header comparison post-dominates the latch body: every path
        // from the latch to the exit re-enters the header.
        assert!(a.inst_post_dominates(cond, accn));
        assert!(a.inst_post_dominates(cond, i), "same block, later position");
        assert!(!a.inst_post_dominates(accn, cond), "latch is bypassable");
    }

    #[test]
    fn control_flow_edges_follow_block_order_and_branches() {
        let f = parse_function_text(LOOP).unwrap();
        let a = Analyses::new(&f);
        let i = get(&f, "i");
        let acc = get(&f, "acc");
        assert!(a.has_control_flow_edge(&f, i, acc));
        // Header terminator flows to first instruction of latch and of exit.
        let header_term = f.terminator(crate::BlockId(1)).unwrap();
        let succs = a.control_flow_successors(&f, header_term);
        assert_eq!(succs.len(), 2);
        let accn = get(&f, "acc.next");
        assert!(succs.contains(&accn));
        // Predecessors of the header's first phi include both branches.
        let preds = a.control_flow_predecessors(&f, i);
        assert_eq!(preds.len(), 2, "entry br and latch br");
    }
}
