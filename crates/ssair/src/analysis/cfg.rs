//! Block-level control-flow graph with predecessor lists and a reverse
//! post-order, the substrate for dominator computation.

use crate::function::{BlockId, Function};

/// The control-flow graph of one function.
pub struct Cfg {
    /// Successors of each block, indexed by block id.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors of each block, indexed by block id.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse post-order from the entry (unreachable blocks are
    /// absent).
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] = position of b in rpo`, or `usize::MAX` if
    /// unreachable.
    pub rpo_index: Vec<usize>,
    /// Exit blocks (terminated by `ret`).
    pub exits: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    #[must_use]
    pub fn new(f: &Function) -> Cfg {
        let n = f.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for b in f.block_ids() {
            let ss = f.successors(b);
            if ss.is_empty() && f.terminator(b).is_some() {
                exits.push(b);
            }
            for s in &ss {
                preds[s.0 as usize].push(b);
            }
            succs[b.0 as usize] = ss;
        }
        // Iterative post-order DFS from entry.
        let mut post = Vec::new();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let bs = &succs[b.0 as usize];
            if *next < bs.len() {
                let s = bs[*next];
                *next += 1;
                if state[s.0 as usize] == 0 {
                    state[s.0 as usize] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.0 as usize] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            exits,
        }
    }

    /// Predecessor blocks of `b`.
    #[must_use]
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0 as usize]
    }

    /// Successor blocks of `b`.
    #[must_use]
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0 as usize]
    }

    /// `true` if `b` is reachable from the entry block.
    #[must_use]
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    #[test]
    fn diamond_cfg() {
        let f = parse_function_text(
            r#"
define i32 @d(i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %join
e:
  br label %join
join:
  ret i32 0
}
"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let (entry, t, e, join) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(cfg.succs(entry), &[t, e]);
        assert_eq!(cfg.preds(join), &[t, e]);
        assert_eq!(cfg.exits, vec![join]);
        assert_eq!(cfg.rpo[0], entry);
        assert_eq!(*cfg.rpo.last().unwrap(), join);
        assert!(cfg.is_reachable(join));
    }

    #[test]
    fn rpo_visits_loop_header_before_body() {
        let f = parse_function_text(
            r#"
define void @l(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %j, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %j = add i64 %i, 1
  br label %header
exit:
  ret void
}
"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let header = BlockId(1);
        let body = BlockId(2);
        assert!(
            cfg.rpo_index[header.0 as usize] < cfg.rpo_index[body.0 as usize],
            "header precedes body in RPO"
        );
    }
}
