//! SCEV-lite affine forms over loop induction variables.
//!
//! Rewrites address/index computations into the normal form
//! `konst + Σ coeff·iv + Σ coeff·sym`, where each `iv` is a recognised
//! loop induction variable (a header phi whose in-loop update is
//! `add phi, const`) and each `sym` is an opaque value treated
//! symbolically. A coefficient is either a constant or a constant times
//! one symbolic value (`i * dim` keeps `dim` symbolic), which is what
//! delinearized row-major subscripts like `i*dim + j` need.
//!
//! Opaque symbols are *not* guaranteed loop-invariant here — a non-affine
//! subexpression such as `i*i` also falls back to an opaque symbol.
//! Consumers running dependence tests must check
//! [`AffineMap::invariant_in`] for every symbol against the loop being
//! tested; a symbol defined inside the loop poisons the test, which is
//! exactly the conservative answer for non-affine subscripts.
//!
//! A small value-range lattice ([`VRange`]) tracks `[lo, hi)` bounds:
//! induction variables get their range from the loop guard
//! (`icmp slt iv, end` in the rotated-loop header), constants are exact,
//! and simple `add`/`sub`-by-constant shifts propagate. Everything else
//! is unknown.

use super::{Analyses, LoopForest};
use crate::function::{BlockId, Function, ICmpPred, Opcode, ValueId, ValueKind};
use std::collections::BTreeMap;

/// One end of a symbolic value range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// A known integer.
    Const(i64),
    /// A symbolic (run-time) value.
    Sym(ValueId),
    /// No information.
    Unknown,
}

impl Bound {
    /// Shifts a bound by a constant; symbolic bounds absorb only zero.
    #[must_use]
    pub fn offset(self, d: i64) -> Bound {
        match self {
            Bound::Const(k) => Bound::Const(k + d),
            b if d == 0 => b,
            _ => Bound::Unknown,
        }
    }
}

/// A `[lo, hi)` value range (inclusive low, exclusive high).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VRange {
    /// Inclusive lower bound.
    pub lo: Bound,
    /// Exclusive upper bound.
    pub hi: Bound,
}

impl VRange {
    /// The range carrying no information.
    pub const UNKNOWN: VRange = VRange {
        lo: Bound::Unknown,
        hi: Bound::Unknown,
    };
}

/// One recognised induction variable.
#[derive(Debug, Clone)]
pub struct IndVar {
    /// The header phi.
    pub phi: ValueId,
    /// The loop header block.
    pub header: BlockId,
    /// Index of the loop in [`LoopForest::loops`].
    pub loop_idx: usize,
    /// The incoming value from outside the loop.
    pub init: ValueId,
    /// The in-loop update instruction (`add phi, step`).
    pub next: ValueId,
    /// The constant step.
    pub step: i64,
    /// `[init, guard-end)` when the rotated-loop guard is recognised and
    /// the step is `+1`; [`VRange::UNKNOWN`] otherwise.
    pub range: VRange,
}

/// Coefficient of one induction-variable term: `k` or `k * sym`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coeff {
    /// The constant factor.
    pub k: i64,
    /// An optional symbolic factor (e.g. the row stride `dim`).
    pub sym: Option<ValueId>,
}

/// An affine index expression in element units.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineIndex {
    /// The constant term.
    pub konst: i64,
    /// Induction-variable terms, keyed by the IV's header phi.
    pub terms: BTreeMap<ValueId, Coeff>,
    /// Opaque symbolic terms with constant coefficients.
    pub syms: BTreeMap<ValueId, i64>,
}

impl AffineIndex {
    fn constant(k: i64) -> AffineIndex {
        AffineIndex {
            konst: k,
            ..AffineIndex::default()
        }
    }

    fn symbol(v: ValueId) -> AffineIndex {
        let mut a = AffineIndex::default();
        a.syms.insert(v, 1);
        a
    }

    fn iv_term(phi: ValueId) -> AffineIndex {
        let mut a = AffineIndex::default();
        a.terms.insert(phi, Coeff { k: 1, sym: None });
        a
    }

    /// `true` when the expression is a plain integer.
    #[must_use]
    pub fn is_const(&self) -> bool {
        self.terms.is_empty() && self.syms.is_empty()
    }

    /// `self + sign * other`, dropping cancelled terms.
    #[must_use]
    pub fn add_scaled(mut self, other: &AffineIndex, sign: i64) -> Option<AffineIndex> {
        self.konst += sign * other.konst;
        for (&iv, &c) in &other.terms {
            match self.terms.entry(iv) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(Coeff {
                        k: sign * c.k,
                        sym: c.sym,
                    });
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // Mixed `k*S1 + k*S2` coefficients on one IV are not
                    // representable; only same-symbol terms combine.
                    if e.get().sym != c.sym {
                        return None;
                    }
                    e.get_mut().k += sign * c.k;
                    if e.get().k == 0 {
                        e.remove();
                    }
                }
            }
        }
        for (&s, &c) in &other.syms {
            let e = self.syms.entry(s).or_insert(0);
            *e += sign * c;
            if *e == 0 {
                self.syms.remove(&s);
            }
        }
        Some(self)
    }

    fn scale(mut self, k: i64) -> AffineIndex {
        if k == 0 {
            return AffineIndex::constant(0);
        }
        self.konst *= k;
        for c in self.terms.values_mut() {
            c.k *= k;
        }
        for c in self.syms.values_mut() {
            *c *= k;
        }
        self
    }

    /// `true` when `self` is exactly one opaque symbol with coefficient 1.
    fn as_bare_symbol(&self) -> Option<ValueId> {
        if self.konst == 0 && self.terms.is_empty() && self.syms.len() == 1 {
            let (&s, &c) = self.syms.iter().next().unwrap();
            if c == 1 {
                return Some(s);
            }
        }
        None
    }
}

/// An affine memory address: a root pointer plus an element-unit index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineAddr {
    /// The root pointer (the start of the `gep` chain: a parameter, an
    /// `alloca`, or some other non-`gep` pointer value).
    pub base: ValueId,
    /// The accumulated affine index.
    pub index: AffineIndex,
}

/// Recognised induction variables and affine-form construction for one
/// function.
pub struct AffineMap {
    /// Induction variables keyed by their header phi.
    pub ivs: BTreeMap<ValueId, IndVar>,
}

impl AffineMap {
    /// Recognises the induction variables of every natural loop of `f`.
    #[must_use]
    pub fn new(f: &Function, an: &Analyses) -> AffineMap {
        let mut ivs = BTreeMap::new();
        for (loop_idx, l) in an.loops.loops.iter().enumerate() {
            for &v in &f.block(l.header).instrs {
                if f.opcode(v) != Some(Opcode::Phi) {
                    continue;
                }
                let Some(iv) = recognise_iv(f, l.header, loop_idx, &an.loops, v) else {
                    continue;
                };
                ivs.insert(v, iv);
            }
        }
        AffineMap { ivs }
    }

    /// The induction variable whose header phi is `v`, if any.
    #[must_use]
    pub fn iv(&self, v: ValueId) -> Option<&IndVar> {
        self.ivs.get(&v)
    }

    /// The affine form of an integer index value, if one exists. Values
    /// that cannot be linearized fold into opaque symbols (see the module
    /// docs for the invariance caveat).
    #[must_use]
    pub fn index_of(&self, f: &Function, v: ValueId) -> AffineIndex {
        self.index_rec(f, v, 24)
    }

    /// The affine address of a pointer value: the `gep` chain is chased
    /// to its root and every index is accumulated. `None` when any link
    /// of the chain fails to combine.
    #[must_use]
    pub fn address_of(&self, f: &Function, ptr: ValueId) -> Option<AffineAddr> {
        let mut index = AffineIndex::constant(0);
        let mut cur = ptr;
        let mut fuel = 24;
        while let Some(i) = f.instr(cur) {
            if i.opcode != Opcode::Gep || fuel == 0 {
                break;
            }
            fuel -= 1;
            index = index.add_scaled(&self.index_rec(f, i.operands[1], 24), 1)?;
            cur = i.operands[0];
        }
        Some(AffineAddr { base: cur, index })
    }

    /// `true` when `v` is invariant in loop `loop_idx`: a constant, an
    /// argument, or an instruction defined outside the loop's blocks.
    #[must_use]
    pub fn invariant_in(f: &Function, forest: &LoopForest, loop_idx: usize, v: ValueId) -> bool {
        if !f.is_instruction(v) {
            return true;
        }
        let l = &forest.loops[loop_idx];
        f.find_block_of(v).is_none_or(|b| !l.contains(b))
    }

    /// The `[lo, hi)` value range of `v` in the lattice: exact for
    /// constants, guard-derived for induction variables, shifted through
    /// `add`/`sub` by constants and integer extensions.
    #[must_use]
    pub fn range_of(&self, f: &Function, v: ValueId) -> VRange {
        self.range_rec(f, v, 8)
    }

    fn range_rec(&self, f: &Function, v: ValueId, fuel: u32) -> VRange {
        if fuel == 0 {
            return VRange::UNKNOWN;
        }
        if let Some(iv) = self.ivs.get(&v) {
            return iv.range;
        }
        match &f.value(v).kind {
            ValueKind::ConstInt(k) => VRange {
                lo: Bound::Const(*k),
                hi: Bound::Const(*k + 1),
            },
            ValueKind::Instr(i) => match i.opcode {
                Opcode::Add | Opcode::Sub => {
                    let sign = if i.opcode == Opcode::Sub { -1 } else { 1 };
                    if let ValueKind::ConstInt(k) = f.value(i.operands[1]).kind {
                        let r = self.range_rec(f, i.operands[0], fuel - 1);
                        VRange {
                            lo: r.lo.offset(sign * k),
                            hi: r.hi.offset(sign * k),
                        }
                    } else {
                        VRange::UNKNOWN
                    }
                }
                Opcode::SExt | Opcode::ZExt => self.range_rec(f, i.operands[0], fuel - 1),
                _ => VRange::UNKNOWN,
            },
            _ => VRange::UNKNOWN,
        }
    }

    fn index_rec(&self, f: &Function, v: ValueId, fuel: u32) -> AffineIndex {
        if fuel == 0 {
            return AffineIndex::symbol(v);
        }
        if self.ivs.contains_key(&v) {
            return AffineIndex::iv_term(v);
        }
        match &f.value(v).kind {
            ValueKind::ConstInt(k) => AffineIndex::constant(*k),
            ValueKind::Instr(i) => match i.opcode {
                Opcode::Add | Opcode::Sub => {
                    let sign = if i.opcode == Opcode::Sub { -1 } else { 1 };
                    let a = self.index_rec(f, i.operands[0], fuel - 1);
                    let b = self.index_rec(f, i.operands[1], fuel - 1);
                    a.add_scaled(&b, sign)
                        .unwrap_or_else(|| AffineIndex::symbol(v))
                }
                Opcode::Mul => {
                    let a = self.index_rec(f, i.operands[0], fuel - 1);
                    let b = self.index_rec(f, i.operands[1], fuel - 1);
                    mul_affine(&a, &b).unwrap_or_else(|| AffineIndex::symbol(v))
                }
                Opcode::Shl => {
                    if let ValueKind::ConstInt(s) = f.value(i.operands[1]).kind {
                        if (0..32).contains(&s) {
                            return self.index_rec(f, i.operands[0], fuel - 1).scale(1 << s);
                        }
                    }
                    AffineIndex::symbol(v)
                }
                Opcode::SExt | Opcode::ZExt | Opcode::Trunc => {
                    self.index_rec(f, i.operands[0], fuel - 1)
                }
                _ => AffineIndex::symbol(v),
            },
            // Arguments and anything else opaque.
            _ => AffineIndex::symbol(v),
        }
    }
}

/// Multiplies two affine forms when the product stays representable:
/// const × anything, or bare-symbol × (const-coefficient IV polynomial),
/// which yields symbolic-stride terms like `i * dim`.
fn mul_affine(a: &AffineIndex, b: &AffineIndex) -> Option<AffineIndex> {
    if a.is_const() {
        return Some(b.clone().scale(a.konst));
    }
    if b.is_const() {
        return Some(a.clone().scale(b.konst));
    }
    let (sym, poly) = match (a.as_bare_symbol(), b.as_bare_symbol()) {
        (Some(s), None) => (s, b),
        (None, Some(s)) => (s, a),
        _ => return None,
    };
    if !poly.syms.is_empty() {
        return None;
    }
    let mut out = AffineIndex::default();
    for (&iv, &c) in &poly.terms {
        if c.sym.is_some() {
            return None;
        }
        out.terms.insert(
            iv,
            Coeff {
                k: c.k,
                sym: Some(sym),
            },
        );
    }
    if poly.konst != 0 {
        out.syms.insert(sym, poly.konst);
    }
    Some(out)
}

/// Recognises `phi` (in `header` of loop `loop_idx`) as an induction
/// variable: two incoming values, the in-loop one an `add phi, const`.
fn recognise_iv(
    f: &Function,
    header: BlockId,
    loop_idx: usize,
    forest: &LoopForest,
    phi: ValueId,
) -> Option<IndVar> {
    let l = &forest.loops[loop_idx];
    let i = f.instr(phi)?;
    if i.operands.len() != 2 {
        return None;
    }
    let (mut init, mut next) = (None, None);
    for (&val, &from) in i.operands.iter().zip(&i.incoming) {
        if l.contains(from) {
            next = Some(val);
        } else {
            init = Some(val);
        }
    }
    let (init, next) = (init?, next?);
    let ni = f.instr(next)?;
    let step = match ni.opcode {
        Opcode::Add | Opcode::Sub => {
            let (x, y) = (ni.operands[0], ni.operands[1]);
            let (other, konst_first) = if x == phi {
                (y, false)
            } else if y == phi && ni.opcode == Opcode::Add {
                (x, true)
            } else {
                return None;
            };
            let _ = konst_first;
            match f.value(other).kind {
                ValueKind::ConstInt(k) if ni.opcode == Opcode::Add => k,
                ValueKind::ConstInt(k) => -k,
                _ => return None,
            }
        }
        _ => return None,
    };
    let range = guard_range(f, header, l, phi, init, step);
    Some(IndVar {
        phi,
        header,
        loop_idx,
        init,
        next,
        step,
        range,
    })
}

/// Derives `[init, end)` from the rotated-loop guard `icmp slt phi, end`
/// (or its swapped/negated forms) feeding the header's conditional
/// branch. Only `step == +1` upward loops get a range.
fn guard_range(
    f: &Function,
    header: BlockId,
    l: &super::Loop,
    phi: ValueId,
    init: ValueId,
    step: i64,
) -> VRange {
    if step != 1 {
        return VRange::UNKNOWN;
    }
    let Some(term) = f.terminator(header) else {
        return VRange::UNKNOWN;
    };
    let Some(ti) = f.instr(term) else {
        return VRange::UNKNOWN;
    };
    if ti.opcode != Opcode::CondBr {
        return VRange::UNKNOWN;
    }
    let Some(ci) = f.instr(ti.operands[0]) else {
        return VRange::UNKNOWN;
    };
    let Opcode::ICmp(mut pred) = ci.opcode else {
        return VRange::UNKNOWN;
    };
    let (a, b) = (ci.operands[0], ci.operands[1]);
    let end = if a == phi {
        b
    } else if b == phi {
        pred = pred.swapped();
        a
    } else {
        return VRange::UNKNOWN;
    };
    // If the *false* edge stays in the loop, the guard is negated.
    let true_in = l.contains(ti.targets[0]);
    let false_in = l.contains(ti.targets[1]);
    let continues_on_true = match (true_in, false_in) {
        (true, false) => true,
        (false, true) => false,
        _ => return VRange::UNKNOWN,
    };
    let eff = if continues_on_true {
        pred
    } else {
        match pred {
            ICmpPred::Slt => ICmpPred::Sge,
            ICmpPred::Sle => ICmpPred::Sgt,
            ICmpPred::Sgt => ICmpPred::Sle,
            ICmpPred::Sge => ICmpPred::Slt,
            ICmpPred::Eq => ICmpPred::Ne,
            ICmpPred::Ne => ICmpPred::Eq,
        }
    };
    // Loop continues while `phi <eff> end`; only `slt`/`sle` bound an
    // upward IV.
    let hi = match (eff, f.value(end).kind.clone()) {
        (ICmpPred::Slt, ValueKind::ConstInt(k)) => Bound::Const(k),
        (ICmpPred::Slt, _) => Bound::Sym(end),
        (ICmpPred::Sle, ValueKind::ConstInt(k)) => Bound::Const(k + 1),
        _ => Bound::Unknown,
    };
    let lo = match f.value(init).kind {
        ValueKind::ConstInt(k) => Bound::Const(k),
        _ => Bound::Sym(init),
    };
    VRange { lo, hi }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    fn get(f: &Function, name: &str) -> ValueId {
        f.named(name)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    const NEST: &str = r#"
define void @nest(double* %mo, i64 %dim) {
entry:
  br label %oh
oh:
  %i = phi i64 [ 0, %entry ], [ %i.next, %ol ]
  %oc = icmp slt i64 %i, %dim
  br i1 %oc, label %ih0, label %done
ih0:
  br label %ih
ih:
  %j = phi i64 [ 0, %ih0 ], [ %j.next, %ih ]
  %row = mul i64 %i, %dim
  %idx = add i64 %row, %j
  %p = getelementptr double, double* %mo, i64 %idx
  store double 0.0, double* %p
  %j.next = add i64 %j, 1
  %ic = icmp slt i64 %j.next, %dim
  br i1 %ic, label %ih, label %ol
ol:
  %i.next = add i64 %i, 1
  br label %oh
done:
  ret void
}
"#;

    #[test]
    fn recognises_ivs_with_guard_ranges() {
        let f = parse_function_text(NEST).unwrap();
        let an = Analyses::new(&f);
        let map = AffineMap::new(&f, &an);
        let i = get(&f, "i");
        let dim = get(&f, "dim");
        let iv = map.iv(i).expect("outer IV recognised");
        assert_eq!(iv.step, 1);
        assert_eq!(iv.range.lo, Bound::Const(0));
        assert_eq!(iv.range.hi, Bound::Sym(dim));
        assert!(map.iv(get(&f, "j")).is_some(), "inner IV recognised");
    }

    #[test]
    fn delinearizes_row_major_subscripts() {
        let f = parse_function_text(NEST).unwrap();
        let an = Analyses::new(&f);
        let map = AffineMap::new(&f, &an);
        let addr = map.address_of(&f, get(&f, "p")).expect("affine address");
        assert_eq!(addr.base, get(&f, "mo"));
        let i = get(&f, "i");
        let j = get(&f, "j");
        let dim = get(&f, "dim");
        assert_eq!(addr.index.konst, 0);
        assert_eq!(
            addr.index.terms.get(&i),
            Some(&Coeff {
                k: 1,
                sym: Some(dim)
            })
        );
        assert_eq!(addr.index.terms.get(&j), Some(&Coeff { k: 1, sym: None }));
        assert!(addr.index.syms.is_empty());
    }

    #[test]
    fn non_affine_subscripts_fall_back_to_in_loop_symbols() {
        let f = parse_function_text(
            r#"
define void @sq(double* %a, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %ii = mul i64 %i, %i
  %p = getelementptr double, double* %a, i64 %ii
  store double 1.0, double* %p
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}
"#,
        )
        .unwrap();
        let an = Analyses::new(&f);
        let map = AffineMap::new(&f, &an);
        let addr = map.address_of(&f, get(&f, "p")).unwrap();
        let ii = get(&f, "ii");
        assert_eq!(addr.index.syms.get(&ii), Some(&1), "i*i stays opaque");
        assert!(
            !AffineMap::invariant_in(&f, &an.loops, 0, ii),
            "and the opaque symbol is not loop-invariant, poisoning tests"
        );
    }

    #[test]
    fn ranges_shift_through_constant_arithmetic() {
        let f = parse_function_text(
            r#"
define void @r(i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 2, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %k = add i64 %i, 3
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}
"#,
        )
        .unwrap();
        let an = Analyses::new(&f);
        let map = AffineMap::new(&f, &an);
        let k = get(&f, "k");
        let r = map.range_of(&f, k);
        assert_eq!(r.lo, Bound::Const(5));
        assert_eq!(r.hi, Bound::Unknown, "symbolic end does not shift");
    }
}
