//! Natural loop detection from back edges of the dominator tree.
//!
//! Used by the frontend optimizer (LICM with store promotion) and by the
//! `baselines` crate's polyhedral detector. The IDL path does *not* consume
//! this analysis — loops are recognised there by the `For` idiom written in
//! IDL itself, as in the paper.

use super::cfg::Cfg;
use super::dom::DomTree;
use crate::function::BlockId;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (dominates all blocks of the loop).
    pub header: BlockId,
    /// Latch blocks (sources of back edges to the header).
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, header first.
    pub blocks: Vec<BlockId>,
    /// Index of the enclosing loop in [`LoopForest::loops`], if nested.
    pub parent: Option<usize>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// `true` if `b` belongs to this loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// All natural loops of a function.
pub struct LoopForest {
    /// The loops, outer loops before their nested loops.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detects the natural loops of `cfg` using `dom`.
    #[must_use]
    pub fn new(cfg: &Cfg, dom: &DomTree) -> LoopForest {
        // Find back edges: latch -> header where header dominates latch.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &b in &cfg.rpo {
            for &s in cfg.succs(b) {
                if dom.dominates(s, b) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => headers.push((s, vec![b])),
                    }
                }
            }
        }
        // Natural loop body: header plus all blocks that reach a latch
        // without going through the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in headers {
            let mut blocks = vec![header];
            let mut stack = latches.clone();
            while let Some(b) = stack.pop() {
                if !blocks.contains(&b) {
                    blocks.push(b);
                    for &p in cfg.preds(b) {
                        if p != header {
                            stack.push(p);
                        } else if !blocks.contains(&header) {
                            blocks.push(header);
                        }
                    }
                }
            }
            loops.push(Loop {
                header,
                latches,
                blocks,
                parent: None,
                depth: 1,
            });
        }
        // Sort outer-first by body size (an outer loop strictly contains its
        // nested loops' blocks) and link parents.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..i {
                if loops[j].contains(loops[i].header) && loops[j].header != loops[i].header {
                    // The smallest enclosing loop wins; since loops are
                    // sorted by descending size, later j is smaller.
                    best = Some(j);
                }
            }
            loops[i].parent = best;
            loops[i].depth = best.map_or(1, |b| loops[b].depth + 1);
        }
        LoopForest { loops }
    }

    /// The innermost loop containing `b`, if any.
    #[must_use]
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .max_by_key(|l| l.depth)
    }

    /// The loop headed exactly at `h`, if any.
    #[must_use]
    pub fn loop_with_header(&self, h: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyses;
    use crate::parser::parse_function_text;

    #[test]
    fn detects_a_simple_loop() {
        let f = parse_function_text(
            r#"
define void @l(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %j, %body ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %body, label %exit
body:
  %j = add i64 %i, 1
  br label %header
exit:
  ret void
}
"#,
        )
        .unwrap();
        let a = Analyses::new(&f);
        assert_eq!(a.loops.loops.len(), 1);
        let l = &a.loops.loops[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn detects_nesting_depth() {
        let f = parse_function_text(
            r#"
define void @nest(i64 %n) {
entry:
  br label %oh
oh:
  %i = phi i64 [ 0, %entry ], [ %i2, %ol ]
  %oc = icmp slt i64 %i, %n
  br i1 %oc, label %ih0, label %done
ih0:
  br label %ih
ih:
  %j = phi i64 [ 0, %ih0 ], [ %j2, %il ]
  %ic = icmp slt i64 %j, %n
  br i1 %ic, label %il, label %ol
il:
  %j2 = add i64 %j, 1
  br label %ih
ol:
  %i2 = add i64 %i, 1
  br label %oh
done:
  ret void
}
"#,
        )
        .unwrap();
        let a = Analyses::new(&f);
        assert_eq!(a.loops.loops.len(), 2);
        let outer = a.loops.loop_with_header(BlockId(1)).unwrap();
        let inner = a.loops.loop_with_header(BlockId(3)).unwrap();
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        assert!(outer.contains(inner.header));
        let innermost = a.loops.innermost_containing(BlockId(4)).unwrap();
        assert_eq!(innermost.header, BlockId(3));
    }
}
