//! Functions, basic blocks, instructions and values.
//!
//! Every SSA value in a function — arguments, constants and instructions —
//! lives in a single per-function arena and is addressed by [`ValueId`].
//! This flat addressing is what the constraint solver searches over: an IDL
//! variable is assigned a `ValueId`, exactly as the paper's solver assigns
//! LLVM `Value*`s.

use crate::types::Type;
use std::fmt;

/// Index of a value (argument, constant or instruction) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Integer comparison predicates (a subset of LLVM's `icmp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl ICmpPred {
    /// The textual mnemonic, e.g. `slt`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
        }
    }

    /// The predicate with operands swapped (`a < b` becomes `b > a`).
    #[must_use]
    pub fn swapped(self) -> ICmpPred {
        match self {
            ICmpPred::Eq => ICmpPred::Eq,
            ICmpPred::Ne => ICmpPred::Ne,
            ICmpPred::Slt => ICmpPred::Sgt,
            ICmpPred::Sle => ICmpPred::Sge,
            ICmpPred::Sgt => ICmpPred::Slt,
            ICmpPred::Sge => ICmpPred::Sle,
        }
    }
}

/// Floating-point comparison predicates (ordered forms only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpPred {
    /// Ordered equal.
    Oeq,
    /// Ordered not-equal.
    One,
    /// Ordered less-than.
    Olt,
    /// Ordered less-or-equal.
    Ole,
    /// Ordered greater-than.
    Ogt,
    /// Ordered greater-or-equal.
    Oge,
}

impl FCmpPred {
    /// The textual mnemonic, e.g. `olt`.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpPred::Oeq => "oeq",
            FCmpPred::One => "one",
            FCmpPred::Olt => "olt",
            FCmpPred::Ole => "ole",
            FCmpPred::Ogt => "ogt",
            FCmpPred::Oge => "oge",
        }
    }
}

/// Instruction opcodes.
///
/// This is the instruction inventory of the IDL atomic constraints plus the
/// conversions and calls needed to express the benchmark programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Integer addition: `add a, b`.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Signed integer division.
    SDiv,
    /// Signed integer remainder.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    AShr,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Integer comparison; predicate stored in [`Instr::icmp_pred`].
    ICmp(ICmpPred),
    /// Floating-point comparison.
    FCmp(FCmpPred),
    /// `select cond, a, b` — ternary choice.
    Select,
    /// `gep ptr, idx` — typed pointer arithmetic: `ptr + idx * sizeof(elem)`.
    /// Always exactly one index operand (multi-dimensional arrays are
    /// flattened by the frontend).
    Gep,
    /// Memory load through a pointer operand.
    Load,
    /// `store value, ptr`.
    Store,
    /// SSA phi; operand `i` flows in from [`Instr::incoming`] block `i`.
    Phi,
    /// Unconditional branch; target in [`Instr::targets`].
    Br,
    /// Conditional branch: operand 0 is the `i1` condition;
    /// `targets[0]` is taken on true, `targets[1]` on false.
    CondBr,
    /// Function return; zero or one operand.
    Ret,
    /// Direct call to a named callee (runtime intrinsics, extracted
    /// kernels, heterogeneous API entry points).
    Call,
    /// Stack allocation of `count` elements of the pointee type;
    /// operand 0 is the element count.
    Alloca,
    /// Sign-extend an integer to a wider integer type.
    SExt,
    /// Zero-extend an integer to a wider integer type.
    ZExt,
    /// Truncate an integer to a narrower integer type.
    Trunc,
    /// Signed integer to floating point.
    SIToFP,
    /// Floating point to signed integer.
    FPToSI,
    /// Extend `f32` to `f64`.
    FPExt,
    /// Truncate `f64` to `f32`.
    FPTrunc,
}

impl Opcode {
    /// The textual mnemonic, e.g. `fadd`.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::SRem => "srem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::AShr => "ashr",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::ICmp(_) => "icmp",
            Opcode::FCmp(_) => "fcmp",
            Opcode::Select => "select",
            Opcode::Gep => "getelementptr",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::Phi => "phi",
            Opcode::Br => "br",
            Opcode::CondBr => "br",
            Opcode::Ret => "ret",
            Opcode::Call => "call",
            Opcode::Alloca => "alloca",
            Opcode::SExt => "sext",
            Opcode::ZExt => "zext",
            Opcode::Trunc => "trunc",
            Opcode::SIToFP => "sitofp",
            Opcode::FPToSI => "fptosi",
            Opcode::FPExt => "fpext",
            Opcode::FPTrunc => "fptrunc",
        }
    }

    /// `true` for `br` and conditional `br`.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr)
    }

    /// `true` for instructions that end a basic block.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr | Opcode::Ret)
    }

    /// `true` for pure data computations with no memory or control effect
    /// (the instruction set a detached kernel function may contain).
    #[must_use]
    pub fn is_pure_arith(&self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::Mul
                | Opcode::SDiv
                | Opcode::SRem
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Shl
                | Opcode::AShr
                | Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::ICmp(_)
                | Opcode::FCmp(_)
                | Opcode::Select
                | Opcode::SExt
                | Opcode::ZExt
                | Opcode::Trunc
                | Opcode::SIToFP
                | Opcode::FPToSI
                | Opcode::FPExt
                | Opcode::FPTrunc
        )
    }

    /// `true` if the instruction reads or writes memory.
    #[must_use]
    pub fn touches_memory(&self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store | Opcode::Call)
    }
}

/// An instruction: opcode, operands and placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// What the instruction does.
    pub opcode: Opcode,
    /// Value operands (for `phi`, the incoming values).
    pub operands: Vec<ValueId>,
    /// For `phi`: incoming blocks, parallel to `operands`.
    pub incoming: Vec<BlockId>,
    /// For `br`/`condbr`: successor blocks.
    pub targets: Vec<BlockId>,
    /// For `call`: the callee symbol.
    pub callee: Option<String>,
}

impl Instr {
    fn simple(opcode: Opcode, operands: Vec<ValueId>) -> Instr {
        Instr {
            opcode,
            operands,
            incoming: Vec::new(),
            targets: Vec::new(),
            callee: None,
        }
    }
}

/// What a value is: argument, constant or instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueKind {
    /// The `index`-th formal parameter of the function.
    Argument {
        /// Zero-based parameter position.
        index: usize,
    },
    /// An integer constant (also used for `i1` with values 0/1).
    ConstInt(i64),
    /// A floating-point constant; bit pattern stored exactly.
    ConstFloat(f64),
    /// An instruction; the payload holds opcode and operands.
    Instr(Instr),
}

/// A value in the function arena.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueData {
    /// Result type (`Void` for non-producing instructions).
    pub ty: Type,
    /// The value payload.
    pub kind: ValueKind,
    /// Optional source-level name, kept for readable printing
    /// (`%j`, `%a_load`, ...).
    pub name: Option<String>,
}

/// A basic block: an ordered list of instruction value ids, the last of
/// which is a terminator once the block is finished.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockData {
    /// Instructions in execution order.
    pub instrs: Vec<ValueId>,
    /// Optional label, for readable printing.
    pub name: Option<String>,
}

/// A function: a flat value arena plus basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Value ids of the formal parameters, in order.
    pub params: Vec<ValueId>,
    /// All values (arguments, constants, instructions).
    values: Vec<ValueData>,
    /// All basic blocks; `BlockId(0)` is the entry block.
    blocks: Vec<BlockData>,
}

impl Function {
    /// Creates an empty function with the given parameter types. The entry
    /// block (`BlockId(0)`) is created immediately.
    #[must_use]
    pub fn new(name: impl Into<String>, params: &[(String, Type)], ret_ty: Type) -> Function {
        let mut f = Function {
            name: name.into(),
            ret_ty,
            params: Vec::new(),
            values: Vec::new(),
            blocks: vec![BlockData {
                instrs: Vec::new(),
                name: Some("entry".to_owned()),
            }],
        };
        for (i, (pname, pty)) in params.iter().enumerate() {
            let id = f.push_value(ValueData {
                ty: pty.clone(),
                kind: ValueKind::Argument { index: i },
                name: Some(pname.clone()),
            });
            f.params.push(id);
        }
        f
    }

    fn push_value(&mut self, data: ValueData) -> ValueId {
        let id = ValueId(u32::try_from(self.values.len()).expect("function too large"));
        self.values.push(data);
        id
    }

    /// Number of values in the arena (the solver's raw search domain size).
    #[must_use]
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over all value ids.
    pub fn value_ids(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.values.len()).map(|i| ValueId(i as u32))
    }

    /// Iterates over all block ids in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(|i| BlockId(i as u32))
    }

    /// Immutable access to a value.
    #[must_use]
    pub fn value(&self, id: ValueId) -> &ValueData {
        &self.values[id.0 as usize]
    }

    /// Mutable access to a value.
    pub fn value_mut(&mut self, id: ValueId) -> &mut ValueData {
        &mut self.values[id.0 as usize]
    }

    /// Immutable access to a block.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &BlockData {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockData {
        &mut self.blocks[id.0 as usize]
    }

    /// The instruction payload of `id`, or `None` if `id` is not an
    /// instruction.
    #[must_use]
    pub fn instr(&self, id: ValueId) -> Option<&Instr> {
        match &self.value(id).kind {
            ValueKind::Instr(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable instruction payload.
    pub fn instr_mut(&mut self, id: ValueId) -> Option<&mut Instr> {
        match &mut self.value_mut(id).kind {
            ValueKind::Instr(i) => Some(i),
            _ => None,
        }
    }

    /// The opcode of `id` if it is an instruction.
    #[must_use]
    pub fn opcode(&self, id: ValueId) -> Option<Opcode> {
        self.instr(id).map(|i| i.opcode)
    }

    /// `true` if `id` is an instruction.
    #[must_use]
    pub fn is_instruction(&self, id: ValueId) -> bool {
        matches!(self.value(id).kind, ValueKind::Instr(_))
    }

    /// `true` if `id` is an integer or float constant.
    #[must_use]
    pub fn is_constant(&self, id: ValueId) -> bool {
        matches!(
            self.value(id).kind,
            ValueKind::ConstInt(_) | ValueKind::ConstFloat(_)
        )
    }

    /// `true` if `id` is a formal parameter.
    #[must_use]
    pub fn is_argument(&self, id: ValueId) -> bool {
        matches!(self.value(id).kind, ValueKind::Argument { .. })
    }

    /// The block containing instruction `id`, found by scanning. Prefer
    /// [`crate::analysis::Layout`] for repeated queries.
    #[must_use]
    pub fn find_block_of(&self, id: ValueId) -> Option<BlockId> {
        self.block_ids()
            .find(|&b| self.block(b).instrs.contains(&id))
    }

    /// Creates a new empty basic block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.blocks.push(BlockData {
            instrs: Vec::new(),
            name: Some(name.into()),
        });
        id
    }

    /// Interns an integer constant of the given type (deduplicated).
    pub fn const_int(&mut self, ty: Type, v: i64) -> ValueId {
        for (i, vd) in self.values.iter().enumerate() {
            if vd.ty == ty {
                if let ValueKind::ConstInt(c) = vd.kind {
                    if c == v {
                        return ValueId(i as u32);
                    }
                }
            }
        }
        self.push_value(ValueData {
            ty,
            kind: ValueKind::ConstInt(v),
            name: None,
        })
    }

    /// Interns a floating-point constant of the given type (deduplicated,
    /// by bit pattern).
    pub fn const_float(&mut self, ty: Type, v: f64) -> ValueId {
        for (i, vd) in self.values.iter().enumerate() {
            if vd.ty == ty {
                if let ValueKind::ConstFloat(c) = vd.kind {
                    if c.to_bits() == v.to_bits() {
                        return ValueId(i as u32);
                    }
                }
            }
        }
        self.push_value(ValueData {
            ty,
            kind: ValueKind::ConstFloat(v),
            name: None,
        })
    }

    /// Appends an instruction to `block` and returns its value id.
    pub fn append(&mut self, block: BlockId, ty: Type, instr: Instr) -> ValueId {
        let id = self.push_value(ValueData {
            ty,
            kind: ValueKind::Instr(instr),
            name: None,
        });
        self.blocks[block.0 as usize].instrs.push(id);
        id
    }

    /// Appends a simple (non-control, non-phi) instruction.
    pub fn append_simple(
        &mut self,
        block: BlockId,
        ty: Type,
        opcode: Opcode,
        operands: Vec<ValueId>,
    ) -> ValueId {
        self.append(block, ty, Instr::simple(opcode, operands))
    }

    /// Appends a `phi` with no incoming edges yet (see [`Function::add_phi_incoming`]).
    pub fn append_phi(&mut self, block: BlockId, ty: Type) -> ValueId {
        let instr = Instr {
            opcode: Opcode::Phi,
            operands: Vec::new(),
            incoming: Vec::new(),
            targets: Vec::new(),
            callee: None,
        };
        // Phis must precede non-phi instructions in their block.
        let id = self.push_value(ValueData {
            ty,
            kind: ValueKind::Instr(instr),
            name: None,
        });
        let blk = &mut self.blocks[block.0 as usize];
        let pos = blk
            .instrs
            .iter()
            .position(|&v| {
                !matches!(&self.values[v.0 as usize].kind,
                    ValueKind::Instr(i) if i.opcode == Opcode::Phi)
            })
            .unwrap_or(blk.instrs.len());
        blk.instrs.insert(pos, id);
        id
    }

    /// Adds an incoming (value, predecessor-block) pair to a phi.
    ///
    /// # Panics
    /// Panics if `phi` is not a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: ValueId, value: ValueId, from: BlockId) {
        let instr = self
            .instr_mut(phi)
            .expect("add_phi_incoming: not an instruction");
        assert_eq!(instr.opcode, Opcode::Phi, "add_phi_incoming: not a phi");
        instr.operands.push(value);
        instr.incoming.push(from);
    }

    /// Appends an unconditional branch.
    pub fn append_br(&mut self, block: BlockId, target: BlockId) -> ValueId {
        self.append(
            block,
            Type::Void,
            Instr {
                opcode: Opcode::Br,
                operands: Vec::new(),
                incoming: Vec::new(),
                targets: vec![target],
                callee: None,
            },
        )
    }

    /// Appends a conditional branch (`on_true` taken when `cond` is 1).
    pub fn append_condbr(
        &mut self,
        block: BlockId,
        cond: ValueId,
        on_true: BlockId,
        on_false: BlockId,
    ) -> ValueId {
        self.append(
            block,
            Type::Void,
            Instr {
                opcode: Opcode::CondBr,
                operands: vec![cond],
                incoming: Vec::new(),
                targets: vec![on_true, on_false],
                callee: None,
            },
        )
    }

    /// Appends a return (with optional value).
    pub fn append_ret(&mut self, block: BlockId, value: Option<ValueId>) -> ValueId {
        self.append(
            block,
            Type::Void,
            Instr {
                opcode: Opcode::Ret,
                operands: value.into_iter().collect(),
                incoming: Vec::new(),
                targets: Vec::new(),
                callee: None,
            },
        )
    }

    /// Appends a call to `callee`.
    pub fn append_call(
        &mut self,
        block: BlockId,
        ty: Type,
        callee: impl Into<String>,
        args: Vec<ValueId>,
    ) -> ValueId {
        self.append(
            block,
            ty,
            Instr {
                opcode: Opcode::Call,
                operands: args,
                incoming: Vec::new(),
                targets: Vec::new(),
                callee: Some(callee.into()),
            },
        )
    }

    /// The terminator instruction of `block`, if the block is terminated.
    #[must_use]
    pub fn terminator(&self, block: BlockId) -> Option<ValueId> {
        let last = *self.block(block).instrs.last()?;
        let op = self.opcode(last)?;
        op.is_terminator().then_some(last)
    }

    /// Successor blocks of `block` (empty for `ret`-terminated blocks).
    #[must_use]
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        match self.terminator(block).and_then(|t| self.instr(t)) {
            Some(i) => i.targets.clone(),
            None => Vec::new(),
        }
    }

    /// Appends a formal parameter (used by kernel outlining when free
    /// scalars are promoted into the signature). Returns the new argument
    /// value.
    pub fn add_param(&mut self, name: &str, ty: Type) -> ValueId {
        let index = self.params.len();
        let id = self.push_value(ValueData {
            ty,
            kind: ValueKind::Argument { index },
            name: Some(name.to_owned()),
        });
        self.params.push(id);
        id
    }

    /// Rebuilds the block vector keeping only blocks for which `keep`
    /// holds, and rewrites all branch targets and phi incoming blocks with
    /// `remap` (which must map every *kept* old id to its new id).
    ///
    /// The caller is responsible for having removed control references to
    /// dropped blocks first (see `pass::remove_unreachable_blocks`).
    pub fn retain_blocks(
        &mut self,
        keep: impl Fn(BlockId) -> bool,
        remap: impl Fn(BlockId) -> BlockId,
    ) {
        let old_blocks = std::mem::take(&mut self.blocks);
        for (i, b) in old_blocks.into_iter().enumerate() {
            if keep(BlockId(i as u32)) {
                self.blocks.push(b);
            }
        }
        let kept: std::collections::HashSet<ValueId> = self
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter().copied())
            .collect();
        for idx in 0..self.values.len() {
            let id = ValueId(idx as u32);
            if !kept.contains(&id) {
                // Retire dropped instructions so ghost operands vanish.
                if let ValueKind::Instr(instr) = &mut self.values[idx].kind {
                    instr.operands.clear();
                    instr.incoming.clear();
                    instr.targets.clear();
                }
                continue;
            }
            if let ValueKind::Instr(instr) = &mut self.values[idx].kind {
                for t in &mut instr.targets {
                    *t = remap(*t);
                }
                for inb in &mut instr.incoming {
                    *inb = remap(*inb);
                }
            }
        }
    }

    /// Looks up a value by its source name (`%name`), or `None` when no
    /// value carries that name.
    ///
    /// This is the safe boundary for name-based lookups (the replacement
    /// phase and tests used to open-code this with a panic on a missing
    /// name): callers decide how a miss is handled.
    #[must_use]
    pub fn named(&self, name: &str) -> Option<ValueId> {
        self.value_ids()
            .find(|&v| self.value(v).name.as_deref() == Some(name))
    }

    /// A human-readable name for a value: its source name if any, else `v<n>`.
    #[must_use]
    pub fn display_name(&self, id: ValueId) -> String {
        match &self.value(id).name {
            Some(n) => format!("%{n}"),
            None => format!("%{}", id.0),
        }
    }

    /// Sets the display name of a value (builder convenience).
    pub fn set_name(&mut self, id: ValueId, name: impl Into<String>) {
        self.value_mut(id).name = Some(name.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Function {
        // int f(int a, int b) { return a*b + a; }
        let mut f = Function::new(
            "f",
            &[("a".into(), Type::I32), ("b".into(), Type::I32)],
            Type::I32,
        );
        let entry = BlockId(0);
        let (a, b) = (f.params[0], f.params[1]);
        let m = f.append_simple(entry, Type::I32, Opcode::Mul, vec![a, b]);
        let s = f.append_simple(entry, Type::I32, Opcode::Add, vec![m, a]);
        f.append_ret(entry, Some(s));
        f
    }

    #[test]
    fn named_lookup_is_an_option_not_a_panic() {
        let mut f = sample();
        assert_eq!(f.named("a"), Some(f.params[0]));
        assert_eq!(f.named("no_such_value"), None);
        let m = f.block(BlockId(0)).instrs[0];
        f.set_name(m, "prod");
        assert_eq!(f.named("prod"), Some(m));
    }

    #[test]
    fn arena_and_kinds() {
        let f = sample();
        assert_eq!(f.params.len(), 2);
        assert!(f.is_argument(f.params[0]));
        assert!(!f.is_instruction(f.params[0]));
        let entry = BlockId(0);
        assert_eq!(f.block(entry).instrs.len(), 3);
        let mul = f.block(entry).instrs[0];
        assert_eq!(f.opcode(mul), Some(Opcode::Mul));
        assert!(f.is_instruction(mul));
    }

    #[test]
    fn constants_are_interned() {
        let mut f = sample();
        let c1 = f.const_int(Type::I64, 42);
        let c2 = f.const_int(Type::I64, 42);
        let c3 = f.const_int(Type::I32, 42);
        assert_eq!(c1, c2);
        assert_ne!(c1, c3);
        let f1 = f.const_float(Type::F64, 0.0);
        let f2 = f.const_float(Type::F64, -0.0);
        assert_ne!(f1, f2, "0.0 and -0.0 are distinct bit patterns");
    }

    #[test]
    fn terminator_and_successors() {
        let mut f = Function::new("g", &[], Type::Void);
        let entry = BlockId(0);
        let next = f.add_block("next");
        f.append_br(entry, next);
        f.append_ret(next, None);
        assert_eq!(f.successors(entry), vec![next]);
        assert!(f.successors(next).is_empty());
        assert!(f.terminator(entry).is_some());
    }

    #[test]
    fn phis_stay_grouped_at_block_head() {
        let mut f = Function::new("h", &[], Type::Void);
        let entry = BlockId(0);
        let header = f.add_block("header");
        f.append_br(entry, header);
        let c0 = f.const_int(Type::I64, 0);
        let one = f.const_int(Type::I64, 1);
        let phi1 = f.append_phi(header, Type::I64);
        let add = f.append_simple(header, Type::I64, Opcode::Add, vec![phi1, one]);
        let phi2 = f.append_phi(header, Type::I64);
        f.add_phi_incoming(phi1, c0, entry);
        f.add_phi_incoming(phi2, add, entry);
        let instrs = &f.block(header).instrs;
        assert_eq!(instrs[0], phi1);
        assert_eq!(
            instrs[1], phi2,
            "late phi inserted before non-phi instructions"
        );
        assert_eq!(instrs[2], add);
    }

    #[test]
    fn icmp_swapped_is_involutive_on_strict() {
        assert_eq!(ICmpPred::Slt.swapped(), ICmpPred::Sgt);
        assert_eq!(ICmpPred::Slt.swapped().swapped(), ICmpPred::Slt);
        assert_eq!(ICmpPred::Eq.swapped(), ICmpPred::Eq);
    }

    #[test]
    fn opcode_classes() {
        assert!(Opcode::Br.is_branch());
        assert!(Opcode::CondBr.is_terminator());
        assert!(!Opcode::Ret.is_branch());
        assert!(Opcode::FMul.is_pure_arith());
        assert!(!Opcode::Load.is_pure_arith());
        assert!(Opcode::Load.touches_memory());
        assert!(!Opcode::Add.touches_memory());
    }
}
