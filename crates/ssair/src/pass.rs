//! Small transformation utilities shared by the frontend optimizer and the
//! idiom replacement phase: value replacement and dead-code elimination.
//!
//! The paper's replacement scheme (§6.1) deletes only the anchoring store
//! of a matched idiom "and the remaining cleanup is left to the standard
//! dead code elimination pass" — [`eliminate_dead_code`] is that pass.

use crate::analysis::DefUse;
use crate::function::{Function, Opcode, ValueId, ValueKind};
use std::collections::HashSet;

/// Replaces every use of `from` with `to` in `f`.
pub fn replace_all_uses(f: &mut Function, from: ValueId, to: ValueId) {
    for v in f.value_ids().collect::<Vec<_>>() {
        if let ValueKind::Instr(_) = f.value(v).kind {
            let instr = f.instr_mut(v).expect("instruction");
            for op in &mut instr.operands {
                if *op == from {
                    *op = to;
                }
            }
        }
    }
}

/// Removes the instruction `v` from its block (its value-arena slot is
/// retired but ids of other values remain stable).
pub fn remove_instruction(f: &mut Function, v: ValueId) {
    for b in f.block_ids().collect::<Vec<_>>() {
        let blk = f.block_mut(b);
        blk.instrs.retain(|&i| i != v);
    }
    // Neutralize the payload so later passes do not see ghost operands.
    if let Some(i) = f.instr_mut(v) {
        i.operands.clear();
        i.incoming.clear();
        i.targets.clear();
    }
}

/// Iteratively removes instructions that have no users and no side effects.
/// Returns the number of removed instructions.
pub fn eliminate_dead_code(f: &mut Function) -> usize {
    let mut removed_total = 0;
    loop {
        let du = DefUse::new(f);
        let mut dead: Vec<ValueId> = Vec::new();
        for b in f.block_ids() {
            for &v in &f.block(b).instrs {
                let Some(i) = f.instr(v) else { continue };
                let side_effecting = matches!(
                    i.opcode,
                    Opcode::Store | Opcode::Ret | Opcode::Br | Opcode::CondBr | Opcode::Call
                );
                if !side_effecting && du.is_unused(v) {
                    dead.push(v);
                }
            }
        }
        if dead.is_empty() {
            return removed_total;
        }
        let dead_set: HashSet<ValueId> = dead.iter().copied().collect();
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).instrs.retain(|i| !dead_set.contains(i));
        }
        removed_total += dead.len();
    }
}

/// Removes blocks unreachable from the entry, compacting block ids and
/// rewriting branch targets and phi incoming lists. Phi edges from removed
/// predecessors are dropped; phis left with a single incoming value are
/// replaced by that value. Used after idiom replacement excises a loop.
pub fn remove_unreachable_blocks(f: &mut Function) -> usize {
    use crate::function::BlockId;
    // Reachability.
    let n = f.num_blocks();
    let mut reach = vec![false; n];
    let mut stack = vec![BlockId(0)];
    reach[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.successors(b) {
            if !reach[s.0 as usize] {
                reach[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    let removed = reach.iter().filter(|r| !**r).count();
    if removed == 0 {
        return 0;
    }
    // Remap ids.
    let mut remap: Vec<Option<u32>> = vec![None; n];
    let mut next = 0u32;
    for i in 0..n {
        if reach[i] {
            remap[i] = Some(next);
            next += 1;
        }
    }
    // Drop phi edges from unreachable preds, then single-entry phis.
    let mut simplify: Vec<(ValueId, ValueId)> = Vec::new();
    for b in 0..n {
        if !reach[b] {
            continue;
        }
        for &v in f.block(BlockId(b as u32)).instrs.clone().iter() {
            let Some(i) = f.instr(v) else { continue };
            if i.opcode != Opcode::Phi {
                continue;
            }
            let keep: Vec<(ValueId, crate::BlockId)> = i
                .operands
                .iter()
                .zip(&i.incoming)
                .filter(|(_, inb)| reach[inb.0 as usize])
                .map(|(&op, &inb)| (op, inb))
                .collect();
            let instr = f.instr_mut(v).expect("phi");
            instr.operands = keep.iter().map(|(op, _)| *op).collect();
            instr.incoming = keep.iter().map(|(_, b)| *b).collect();
            if instr.operands.len() == 1 {
                simplify.push((v, instr.operands[0]));
            }
        }
    }
    for (phi, val) in simplify {
        replace_all_uses(f, phi, val);
        remove_instruction(f, phi);
    }
    // Rebuild block vector and rewrite ids.
    f.retain_blocks(
        |b| reach[b.0 as usize],
        |old| BlockId(remap[old.0 as usize].expect("reachable")),
    );
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function_text;

    #[test]
    fn dce_removes_transitively_dead_chains() {
        let mut f = parse_function_text(
            r#"
define i32 @f(i32 %a) {
entry:
  %d1 = add i32 %a, 1
  %d2 = mul i32 %d1, %d1
  %live = add i32 %a, 2
  ret i32 %live
}
"#,
        )
        .unwrap();
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 2, "d2 then d1");
        assert_eq!(f.block(crate::BlockId(0)).instrs.len(), 2);
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut f = parse_function_text(
            r#"
define void @g(double* %p) {
entry:
  store double 1.0, double* %p
  %r = call double @sqrt(double 2.0)
  ret void
}
"#,
        )
        .unwrap();
        assert_eq!(eliminate_dead_code(&mut f), 0);
        assert_eq!(f.block(crate::BlockId(0)).instrs.len(), 3);
    }

    #[test]
    fn replace_all_uses_rewires_operands() {
        let mut f = parse_function_text(
            r#"
define i32 @h(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %a
  %y = add i32 %x, 1
  ret i32 %y
}
"#,
        )
        .unwrap();
        let a = f.params[0];
        let b = f.params[1];
        replace_all_uses(&mut f, a, b);
        let x = f.block(crate::BlockId(0)).instrs[0];
        assert_eq!(f.instr(x).unwrap().operands, vec![b, b]);
    }

    #[test]
    fn remove_instruction_then_dce_cleans_inputs() {
        let mut f = parse_function_text(
            r#"
define void @k(double* %p, double %v) {
entry:
  %m = fmul double %v, %v
  store double %m, double* %p
  ret void
}
"#,
        )
        .unwrap();
        let store = f.block(crate::BlockId(0)).instrs[1];
        remove_instruction(&mut f, store);
        let removed = eliminate_dead_code(&mut f);
        assert_eq!(removed, 1, "the fmul feeding the removed store");
        assert_eq!(
            f.block(crate::BlockId(0)).instrs.len(),
            1,
            "only ret remains"
        );
    }
}
