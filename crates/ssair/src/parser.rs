//! Parser for the LLVM-flavoured textual IR produced by [`crate::printer`].
//!
//! The parser is two-pass per function: the first pass creates blocks and
//! result values (so that phis may reference values and blocks defined
//! later), the second pass resolves operands. It accepts exactly the
//! printer's output language, which keeps the grammar small while letting
//! tests, examples and documentation express IR as text.

use crate::function::{BlockId, FCmpPred, Function, ICmpPred, Instr, Opcode, ValueId};
use crate::module::Module;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line of the offending text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),   // mnemonics, types, literals
    Local(String),  // %name
    Global(String), // @name
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Equals,
    Colon,
}

fn lex_line(line: &str, lineno: usize) -> Result<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    let word_char =
        |c: char| c.is_alphanumeric() || matches!(c, '_' | '.' | '*' | '-' | '+' | 'e' | 'E');
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' => i += 1,
            ';' => break, // comment to end of line
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '[' => {
                toks.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                toks.push(Tok::RBracket);
                i += 1;
            }
            '{' => {
                toks.push(Tok::LBrace);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Equals);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            '%' | '@' => {
                let sigil = c;
                i += 1;
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_alphanumeric() || matches!(bytes[i], '_' | '.'))
                {
                    i += 1;
                }
                let name: String = bytes[start..i].iter().collect();
                if name.is_empty() {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("empty name after '{sigil}'"),
                    });
                }
                toks.push(if sigil == '%' {
                    Tok::Local(name)
                } else {
                    Tok::Global(name)
                });
            }
            _ if word_char(c) => {
                let start = i;
                while i < bytes.len() && word_char(bytes[i]) {
                    i += 1;
                }
                toks.push(Tok::Word(bytes[start..i].iter().collect()));
            }
            _ => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    Ok(toks)
}

struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Tok], line: usize) -> Cursor<'a> {
        Cursor { toks, pos: 0, line }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self.toks.get(self.pos).cloned().ok_or(ParseError {
            line: self.line,
            message: "unexpected end of line".into(),
        })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        let got = self.next()?;
        if got == *t {
            Ok(())
        } else {
            Err(ParseError {
                line: self.line,
                message: format!("expected {t:?}, got {got:?}"),
            })
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Word(w) => Ok(w),
            other => Err(ParseError {
                line: self.line,
                message: format!("expected word, got {other:?}"),
            }),
        }
    }

    fn local(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Local(w) => Ok(w),
            other => Err(ParseError {
                line: self.line,
                message: format!("expected %name, got {other:?}"),
            }),
        }
    }

    fn ty(&mut self) -> Result<Type> {
        let w = self.word()?;
        parse_type(&w).ok_or_else(|| self.err(format!("unknown type {w:?}")))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Parses a type word like `i32`, `double`, `float**`.
#[must_use]
pub fn parse_type(word: &str) -> Option<Type> {
    let stars = word.chars().rev().take_while(|&c| c == '*').count();
    let base = &word[..word.len() - stars];
    let mut ty = match base {
        "i1" => Type::I1,
        "i32" => Type::I32,
        "i64" => Type::I64,
        "float" => Type::F32,
        "double" => Type::F64,
        "void" => Type::Void,
        _ => return None,
    };
    for _ in 0..stars {
        ty = ty.ptr_to();
    }
    Some(ty)
}

fn parse_icmp_pred(w: &str) -> Option<ICmpPred> {
    Some(match w {
        "eq" => ICmpPred::Eq,
        "ne" => ICmpPred::Ne,
        "slt" => ICmpPred::Slt,
        "sle" => ICmpPred::Sle,
        "sgt" => ICmpPred::Sgt,
        "sge" => ICmpPred::Sge,
        _ => return None,
    })
}

fn parse_fcmp_pred(w: &str) -> Option<FCmpPred> {
    Some(match w {
        "oeq" => FCmpPred::Oeq,
        "one" => FCmpPred::One,
        "olt" => FCmpPred::Olt,
        "ole" => FCmpPred::Ole,
        "ogt" => FCmpPred::Ogt,
        "oge" => FCmpPred::Oge,
        _ => return None,
    })
}

/// A pending instruction recorded in pass one.
struct Pending {
    toks: Vec<Tok>,
    lineno: usize,
    block: BlockId,
    value: ValueId,
}

/// Parses one module from text. Functions may appear in any order.
pub fn parse_module(text: &str) -> Result<Module> {
    let mut m = Module::new("parsed");
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            i += 1;
            continue;
        }
        if trimmed.starts_with("define") {
            let (f, consumed) = parse_function(&lines, i)?;
            m.add_function(f);
            i = consumed;
        } else {
            return Err(ParseError {
                line: i + 1,
                message: format!("expected 'define', got {trimmed:?}"),
            });
        }
    }
    Ok(m)
}

/// Parses one function from text containing exactly one definition.
pub fn parse_function_text(text: &str) -> Result<Function> {
    let m = parse_module(text)?;
    m.functions.into_iter().next().ok_or(ParseError {
        line: 1,
        message: "no function definition found".into(),
    })
}

fn parse_function(lines: &[&str], start: usize) -> Result<(Function, usize)> {
    // Header: define <ty> @name(<ty> %p, ...) {
    let header_toks = lex_line(lines[start], start + 1)?;
    let mut cur = Cursor::new(&header_toks, start + 1);
    let kw = cur.word()?;
    if kw != "define" {
        return Err(cur.err("expected 'define'"));
    }
    let ret_ty = cur.ty()?;
    let fname = match cur.next()? {
        Tok::Global(n) => n,
        other => {
            return Err(ParseError {
                line: start + 1,
                message: format!("expected @name, got {other:?}"),
            })
        }
    };
    cur.expect(&Tok::LParen)?;
    let mut params: Vec<(String, Type)> = Vec::new();
    loop {
        match cur.peek() {
            Some(Tok::RParen) => {
                cur.next()?;
                break;
            }
            Some(Tok::Comma) => {
                cur.next()?;
            }
            _ => {
                let pty = cur.ty()?;
                let pname = cur.local()?;
                params.push((pname, pty));
            }
        }
    }
    cur.expect(&Tok::LBrace)?;

    let mut f = Function::new(fname, &params, ret_ty);
    let mut names: HashMap<String, ValueId> = HashMap::new();
    for (&vid, (pname, _)) in f.params.iter().zip(&params) {
        names.insert(pname.clone(), vid);
    }
    let mut blocks: HashMap<String, BlockId> = HashMap::new();
    let mut pending: Vec<Pending> = Vec::new();
    let mut cur_block: Option<BlockId> = None;
    let mut first_label = true;

    // Pass one: create blocks and value shells.
    let mut i = start + 1;
    loop {
        if i >= lines.len() {
            return Err(ParseError {
                line: lines.len(),
                message: "unterminated function".into(),
            });
        }
        let lineno = i + 1;
        let trimmed = lines[i].trim();
        i += 1;
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        if trimmed == "}" {
            break;
        }
        let toks = lex_line(trimmed, lineno)?;
        if toks.len() == 2 && matches!(toks[1], Tok::Colon) {
            // Block label.
            let label = match &toks[0] {
                Tok::Word(w) => w.clone(),
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("bad label {other:?}"),
                    })
                }
            };
            let bid = if first_label {
                first_label = false;
                f.block_mut(BlockId(0)).name = Some(label.clone());
                BlockId(0)
            } else {
                f.add_block(label.clone())
            };
            if blocks.insert(label.clone(), bid).is_some() {
                return Err(ParseError {
                    line: lineno,
                    message: format!("duplicate label {label}"),
                });
            }
            cur_block = Some(bid);
            continue;
        }
        let block = cur_block.ok_or(ParseError {
            line: lineno,
            message: "instruction before first block label".into(),
        })?;
        // Determine result name (if "%x =") and result type syntactically.
        let (result_name, body_start) = match (toks.first(), toks.get(1)) {
            (Some(Tok::Local(n)), Some(Tok::Equals)) => (Some(n.clone()), 2),
            _ => (None, 0),
        };
        let ty = peek_result_type(&toks[body_start..], lineno)?;
        let value = f.append(
            block,
            ty,
            Instr {
                opcode: Opcode::Ret, // placeholder, fixed in pass two
                operands: Vec::new(),
                incoming: Vec::new(),
                targets: Vec::new(),
                callee: None,
            },
        );
        if let Some(n) = result_name {
            f.set_name(value, n.clone());
            if names.insert(n.clone(), value).is_some() {
                return Err(ParseError {
                    line: lineno,
                    message: format!("redefinition of %{n}"),
                });
            }
        }
        pending.push(Pending {
            toks: toks[body_start..].to_vec(),
            lineno,
            block,
            value,
        });
    }

    // Pass two: fill in opcodes and operands.
    for p in &pending {
        let instr = parse_instr_body(&mut f, &names, &blocks, &p.toks, p.lineno)?;
        let _ = p.block; // block membership was fixed in pass one
        match &mut f.value_mut(p.value).kind {
            crate::function::ValueKind::Instr(slot) => *slot = instr,
            _ => unreachable!("pending values are instructions"),
        }
    }
    Ok((f, i))
}

/// Determines an instruction's result type from its body tokens without
/// resolving operands.
fn peek_result_type(toks: &[Tok], lineno: usize) -> Result<Type> {
    let err = |m: &str| ParseError {
        line: lineno,
        message: m.into(),
    };
    let word = |k: usize| match toks.get(k) {
        Some(Tok::Word(w)) => Some(w.as_str()),
        _ => None,
    };
    let w0 = word(0).ok_or_else(|| err("expected mnemonic"))?;
    let ty_at = |k: usize| -> Result<Type> {
        let w = word(k).ok_or_else(|| err("expected type"))?;
        parse_type(w).ok_or_else(|| err("unknown type"))
    };
    match w0 {
        "add" | "sub" | "mul" | "sdiv" | "srem" | "and" | "or" | "xor" | "shl" | "ashr"
        | "fadd" | "fsub" | "fmul" | "fdiv" | "load" | "phi" => ty_at(1),
        "icmp" | "fcmp" => Ok(Type::I1),
        "select" => ty_at(3).or_else(|_| {
            // select i1 %c, <ty> ... — type token is at index 3 unless the
            // condition is a literal; scan for the first type word after the
            // first comma instead.
            let comma = toks
                .iter()
                .position(|t| *t == Tok::Comma)
                .ok_or_else(|| err("malformed select"))?;
            match toks.get(comma + 1) {
                Some(Tok::Word(w)) => parse_type(w).ok_or_else(|| err("unknown select type")),
                _ => Err(err("malformed select")),
            }
        }),
        "getelementptr" => Ok(ty_at(1)?.ptr_to()),
        "store" | "br" | "ret" => Ok(Type::Void),
        "call" => ty_at(1),
        "alloca" => Ok(ty_at(1)?.ptr_to()),
        "sext" | "zext" | "trunc" | "sitofp" | "fptosi" | "fpext" | "fptrunc" => {
            // ... <ty> <op> to <ty>
            let to = toks
                .iter()
                .rposition(|t| matches!(t, Tok::Word(w) if w == "to"))
                .ok_or_else(|| err("cast without 'to'"))?;
            ty_at(to + 1)
        }
        other => Err(err(&format!("unknown mnemonic {other:?}"))),
    }
}

/// Resolves an operand token (local name or literal) of the given type.
fn resolve_operand(
    f: &mut Function,
    names: &HashMap<String, ValueId>,
    tok: &Tok,
    ty: &Type,
    lineno: usize,
) -> Result<ValueId> {
    match tok {
        Tok::Local(n) => names.get(n).copied().ok_or(ParseError {
            line: lineno,
            message: format!("use of undefined value %{n}"),
        }),
        Tok::Word(w) => {
            if ty.is_float() {
                let v: f64 = match w.as_str() {
                    "inf" => f64::INFINITY,
                    "-inf" => f64::NEG_INFINITY,
                    "nan" => f64::NAN,
                    lit => lit.parse().map_err(|_| ParseError {
                        line: lineno,
                        message: format!("bad float literal {lit:?}"),
                    })?,
                };
                Ok(f.const_float(ty.clone(), v))
            } else {
                let v: i64 = w.parse().map_err(|_| ParseError {
                    line: lineno,
                    message: format!("bad integer literal {w:?}"),
                })?;
                Ok(f.const_int(ty.clone(), v))
            }
        }
        other => Err(ParseError {
            line: lineno,
            message: format!("bad operand {other:?}"),
        }),
    }
}

fn parse_instr_body(
    f: &mut Function,
    names: &HashMap<String, ValueId>,
    blocks: &HashMap<String, BlockId>,
    toks: &[Tok],
    lineno: usize,
) -> Result<Instr> {
    let mut cur = Cursor::new(toks, lineno);
    let mn = cur.word()?;
    let simple = |opcode: Opcode, operands: Vec<ValueId>| Instr {
        opcode,
        operands,
        incoming: Vec::new(),
        targets: Vec::new(),
        callee: None,
    };
    let block_ref = |cur: &mut Cursor, blocks: &HashMap<String, BlockId>| -> Result<BlockId> {
        let w = cur.word()?;
        if w != "label" {
            return Err(cur.err("expected 'label'"));
        }
        let name = cur.local()?;
        blocks.get(&name).copied().ok_or(ParseError {
            line: lineno,
            message: format!("unknown label %{name}"),
        })
    };
    match mn.as_str() {
        "add" | "sub" | "mul" | "sdiv" | "srem" | "and" | "or" | "xor" | "shl" | "ashr"
        | "fadd" | "fsub" | "fmul" | "fdiv" => {
            let opcode = match mn.as_str() {
                "add" => Opcode::Add,
                "sub" => Opcode::Sub,
                "mul" => Opcode::Mul,
                "sdiv" => Opcode::SDiv,
                "srem" => Opcode::SRem,
                "and" => Opcode::And,
                "or" => Opcode::Or,
                "xor" => Opcode::Xor,
                "shl" => Opcode::Shl,
                "ashr" => Opcode::AShr,
                "fadd" => Opcode::FAdd,
                "fsub" => Opcode::FSub,
                "fmul" => Opcode::FMul,
                _ => Opcode::FDiv,
            };
            let ty = cur.ty()?;
            let a = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let b = cur.next()?;
            let a = resolve_operand(f, names, &a, &ty, lineno)?;
            let b = resolve_operand(f, names, &b, &ty, lineno)?;
            Ok(simple(opcode, vec![a, b]))
        }
        "icmp" => {
            let p = parse_icmp_pred(&cur.word()?).ok_or_else(|| cur.err("bad icmp predicate"))?;
            let ty = cur.ty()?;
            let a = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let b = cur.next()?;
            let a = resolve_operand(f, names, &a, &ty, lineno)?;
            let b = resolve_operand(f, names, &b, &ty, lineno)?;
            Ok(simple(Opcode::ICmp(p), vec![a, b]))
        }
        "fcmp" => {
            let p = parse_fcmp_pred(&cur.word()?).ok_or_else(|| cur.err("bad fcmp predicate"))?;
            let ty = cur.ty()?;
            let a = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let b = cur.next()?;
            let a = resolve_operand(f, names, &a, &ty, lineno)?;
            let b = resolve_operand(f, names, &b, &ty, lineno)?;
            Ok(simple(Opcode::FCmp(p), vec![a, b]))
        }
        "select" => {
            let cty = cur.ty()?; // i1
            let c = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let ty = cur.ty()?;
            let a = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let b = cur.next()?;
            let c = resolve_operand(f, names, &c, &cty, lineno)?;
            let a = resolve_operand(f, names, &a, &ty, lineno)?;
            let b = resolve_operand(f, names, &b, &ty, lineno)?;
            Ok(simple(Opcode::Select, vec![c, a, b]))
        }
        "getelementptr" => {
            let _ety = cur.ty()?;
            cur.expect(&Tok::Comma)?;
            let pty = cur.ty()?;
            let base = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let ity = cur.ty()?;
            let idx = cur.next()?;
            let base = resolve_operand(f, names, &base, &pty, lineno)?;
            let idx = resolve_operand(f, names, &idx, &ity, lineno)?;
            Ok(simple(Opcode::Gep, vec![base, idx]))
        }
        "load" => {
            let _ty = cur.ty()?;
            cur.expect(&Tok::Comma)?;
            let pty = cur.ty()?;
            let p = cur.next()?;
            let p = resolve_operand(f, names, &p, &pty, lineno)?;
            Ok(simple(Opcode::Load, vec![p]))
        }
        "store" => {
            let vty = cur.ty()?;
            let v = cur.next()?;
            cur.expect(&Tok::Comma)?;
            let pty = cur.ty()?;
            let p = cur.next()?;
            let v = resolve_operand(f, names, &v, &vty, lineno)?;
            let p = resolve_operand(f, names, &p, &pty, lineno)?;
            Ok(simple(Opcode::Store, vec![v, p]))
        }
        "phi" => {
            let ty = cur.ty()?;
            let mut operands = Vec::new();
            let mut incoming = Vec::new();
            loop {
                cur.expect(&Tok::LBracket)?;
                let v = cur.next()?;
                cur.expect(&Tok::Comma)?;
                let label = cur.local()?;
                cur.expect(&Tok::RBracket)?;
                operands.push(resolve_operand(f, names, &v, &ty, lineno)?);
                incoming.push(*blocks.get(&label).ok_or(ParseError {
                    line: lineno,
                    message: format!("unknown label %{label}"),
                })?);
                if cur.at_end() {
                    break;
                }
                cur.expect(&Tok::Comma)?;
            }
            Ok(Instr {
                opcode: Opcode::Phi,
                operands,
                incoming,
                targets: Vec::new(),
                callee: None,
            })
        }
        "br" => match cur.peek() {
            Some(Tok::Word(w)) if w == "label" => {
                let t = block_ref(&mut cur, blocks)?;
                Ok(Instr {
                    opcode: Opcode::Br,
                    operands: Vec::new(),
                    incoming: Vec::new(),
                    targets: vec![t],
                    callee: None,
                })
            }
            _ => {
                let cty = cur.ty()?;
                let c = cur.next()?;
                cur.expect(&Tok::Comma)?;
                let t = block_ref(&mut cur, blocks)?;
                cur.expect(&Tok::Comma)?;
                let e = block_ref(&mut cur, blocks)?;
                let c = resolve_operand(f, names, &c, &cty, lineno)?;
                Ok(Instr {
                    opcode: Opcode::CondBr,
                    operands: vec![c],
                    incoming: Vec::new(),
                    targets: vec![t, e],
                    callee: None,
                })
            }
        },
        "ret" => {
            if let Some(Tok::Word(w)) = cur.peek() {
                if w == "void" {
                    return Ok(simple(Opcode::Ret, Vec::new()));
                }
            }
            let ty = cur.ty()?;
            let v = cur.next()?;
            let v = resolve_operand(f, names, &v, &ty, lineno)?;
            Ok(simple(Opcode::Ret, vec![v]))
        }
        "call" => {
            let _ty = cur.ty()?;
            let callee = match cur.next()? {
                Tok::Global(g) => g,
                other => {
                    return Err(ParseError {
                        line: lineno,
                        message: format!("expected @callee, got {other:?}"),
                    })
                }
            };
            cur.expect(&Tok::LParen)?;
            let mut args = Vec::new();
            loop {
                match cur.peek() {
                    Some(Tok::RParen) => {
                        cur.next()?;
                        break;
                    }
                    Some(Tok::Comma) => {
                        cur.next()?;
                    }
                    _ => {
                        let aty = cur.ty()?;
                        let a = cur.next()?;
                        args.push(resolve_operand(f, names, &a, &aty, lineno)?);
                    }
                }
            }
            Ok(Instr {
                opcode: Opcode::Call,
                operands: args,
                incoming: Vec::new(),
                targets: Vec::new(),
                callee: Some(callee),
            })
        }
        "alloca" => {
            let _ety = cur.ty()?;
            cur.expect(&Tok::Comma)?;
            let cty = cur.ty()?;
            let c = cur.next()?;
            let c = resolve_operand(f, names, &c, &cty, lineno)?;
            Ok(simple(Opcode::Alloca, vec![c]))
        }
        "sext" | "zext" | "trunc" | "sitofp" | "fptosi" | "fpext" | "fptrunc" => {
            let opcode = match mn.as_str() {
                "sext" => Opcode::SExt,
                "zext" => Opcode::ZExt,
                "trunc" => Opcode::Trunc,
                "sitofp" => Opcode::SIToFP,
                "fptosi" => Opcode::FPToSI,
                "fpext" => Opcode::FPExt,
                _ => Opcode::FPTrunc,
            };
            let ty = cur.ty()?;
            let v = cur.next()?;
            let v = resolve_operand(f, names, &v, &ty, lineno)?;
            let to = cur.word()?;
            if to != "to" {
                return Err(cur.err("expected 'to'"));
            }
            let _target = cur.ty()?;
            Ok(simple(opcode, vec![v]))
        }
        other => Err(ParseError {
            line: lineno,
            message: format!("unknown mnemonic {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_function;

    const EXAMPLE: &str = r#"
define i32 @example(i32 %a, i32 %b, i32 %c) {
entry:
  %1 = mul i32 %a, %b
  %2 = mul i32 %c, %a
  %3 = add i32 %1, %2
  ret i32 %3
}
"#;

    #[test]
    fn parses_the_paper_example() {
        let f = parse_function_text(EXAMPLE).unwrap();
        assert_eq!(f.name, "example");
        assert_eq!(f.params.len(), 3);
        let entry = BlockId(0);
        assert_eq!(f.block(entry).instrs.len(), 4);
        assert_eq!(f.opcode(f.block(entry).instrs[2]), Some(Opcode::Add));
    }

    #[test]
    fn parses_loops_with_forward_phi_references() {
        let text = r#"
define i64 @sum(i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %latch ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %latch ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %latch, label %exit
latch:
  %acc.next = add i64 %acc, %i
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret i64 %acc
}
"#;
        let f = parse_function_text(text).unwrap();
        assert_eq!(f.num_blocks(), 4);
        let header = BlockId(1);
        let phi = f.block(header).instrs[0];
        assert_eq!(f.opcode(phi), Some(Opcode::Phi));
        let instr = f.instr(phi).unwrap();
        assert_eq!(instr.operands.len(), 2);
        assert_eq!(instr.incoming.len(), 2);
    }

    #[test]
    fn print_parse_print_fixpoint() {
        let text = r#"
define double @axpy(double* %x, double* %y, double %a, i64 %n) {
entry:
  br label %header
header:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %xa = getelementptr double, double* %x, i64 %i
  %xv = load double, double* %xa
  %m = fmul double %xv, %a
  %ya = getelementptr double, double* %y, i64 %i
  %yv = load double, double* %ya
  %s = fadd double %m, %yv
  store double %s, double* %ya
  %i.next = add i64 %i, 1
  br label %header
exit:
  ret double 0.0
}
"#;
        let f1 = parse_function_text(text).unwrap();
        let p1 = print_function(&f1);
        let f2 = parse_function_text(&p1).unwrap();
        let p2 = print_function(&f2);
        assert_eq!(p1, p2, "printer/parser must reach a fixpoint");
    }

    #[test]
    fn parses_calls_selects_and_casts() {
        let text = r#"
define double @k(double %x, i32 %i) {
entry:
  %s = call double @sqrt(double %x)
  %c = fcmp olt double %s, 1.5
  %sel = select i1 %c, double %s, %x
  %w = sext i32 %i to i64
  %g = sitofp i64 %w to double
  %r = fadd double %sel, %g
  ret double %r
}
"#;
        let f = parse_function_text(text).unwrap();
        let entry = BlockId(0);
        let call = f.block(entry).instrs[0];
        assert_eq!(f.opcode(call), Some(Opcode::Call));
        assert_eq!(f.instr(call).unwrap().callee.as_deref(), Some("sqrt"));
        let sel = f.block(entry).instrs[2];
        assert_eq!(f.opcode(sel), Some(Opcode::Select));
        assert_eq!(f.instr(sel).unwrap().operands.len(), 3);
    }

    #[test]
    fn reports_undefined_values_with_line_numbers() {
        let text = "define void @f() {\nentry:\n  ret i32 %missing\n}\n";
        let err = parse_function_text(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn rejects_duplicate_definitions() {
        let text = "define void @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n  %x = add i32 %a, 2\n  ret void\n}\n";
        let err = parse_function_text(text).unwrap_err();
        assert!(err.message.contains("redefinition"));
    }

    #[test]
    fn parses_alloca_and_stores() {
        let text = r#"
define void @locals(i64 %n) {
entry:
  %buf = alloca double, i64 %n
  %p = getelementptr double, double* %buf, i64 0
  store double 3.5, double* %p
  ret void
}
"#;
        let f = parse_function_text(text).unwrap();
        let entry = BlockId(0);
        let alloca = f.block(entry).instrs[0];
        assert_eq!(f.opcode(alloca), Some(Opcode::Alloca));
        assert_eq!(f.value(alloca).ty, Type::F64.ptr_to());
    }
}
