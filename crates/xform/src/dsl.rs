//! Surface-program renderers for the two DSL backends (paper §5.2/§6.2).
//!
//! The paper ships extracted idioms to Halide (a C++-embedded pipeline
//! AST) and Lift (a functional IR of `map`/`reduce`/`zip` skeletons; its
//! Figure 15 shows GEMM). These renderers produce the equivalent surface
//! programs for our matched idioms — they document exactly what would be
//! handed to the DSL compilers, while execution of the "generated device
//! code" is handled by the IR functions `replace` emits.

use idioms::{IdiomInstance, IdiomKind};
use ssair::Function;

/// Renders the Lift program for a matched idiom (cf. paper Figure 15).
#[must_use]
pub fn lift_program(f: &Function, inst: &IdiomInstance, kernel_c: &str) -> String {
    let name = |var: &str| {
        inst.value(var)
            .map_or_else(|| "?".to_owned(), |v| f.display_name(v))
    };
    match inst.kind {
        IdiomKind::Reduction => format!(
            "// reduction operator extracted from {}\n{kernel_c}\nreduce_in_lift(xs) {{\n  reduce(kernel, {}, map(id, zip({})))\n}}\n",
            inst.function,
            name("init"),
            (0..inst.family("read_value").len())
                .map(|r| name(&format!("read[{r}].base_pointer")))
                .collect::<Vec<_>>()
                .join(", "),
        ),
        IdiomKind::Histogram => format!(
            "// generalized histogram from {}\n{kernel_c}\nhisto_in_lift(bins, xs) {{\n  map(fun(x) {{ atomic_update(bins, idx_kernel(x), val_kernel) }}, xs)\n}}\n",
            inst.function
        ),
        IdiomKind::Gemm => format!(
            "gemm_in_lift(A={}, B={}, C={}) {{\n  map(fun(a_row, c_row) {{\n    map(fun(b_col, c) {{\n      reduce(add, 0.0f, map(mult, zip(a_row, b_col)))\n    }}, zip(transpose(B), c_row))\n  }}, zip(A, C))\n}}\n",
            name("input1.base_pointer"),
            name("input2.base_pointer"),
            name("output.base_pointer"),
        ),
        IdiomKind::Spmv => format!(
            "spmv_in_lift(vals={}, rowptr={}, colidx={}, x={}) {{\n  map(fun(row) {{ reduce(add, 0.0, map(fun(k) {{ mult(vals[k], x[colidx[k]]) }}, row)) }}, rows(rowptr))\n}}\n",
            name("seq_read.base_pointer"),
            name("ranges.base_pointer"),
            name("idx_read.base_pointer"),
            name("indir_read.base_pointer"),
        ),
        IdiomKind::Stencil1D | IdiomKind::Stencil2D => format!(
            "// stencil from {}\n{kernel_c}\nstencil_in_lift(input) {{\n  map(kernel, slide(neighbourhood, input))\n}}\n",
            inst.function
        ),
    }
}

/// Renders the Halide pipeline for a matched stencil (Halide handles the
/// stencil and linear-algebra idioms in the paper; control-flow kernels
/// are not expressible — §5.2).
#[must_use]
pub fn halide_program(f: &Function, inst: &IdiomInstance) -> Option<String> {
    let name = |var: &str| {
        inst.value(var)
            .map_or_else(|| "?".to_owned(), |v| f.display_name(v))
    };
    match inst.kind {
        IdiomKind::Stencil1D => {
            let reads = inst.family("read_value").len();
            Some(format!(
                "Func out; Var x;\n// {reads} taps from {}\nout(x) = kernel({});\nout.vectorize(x, 8).parallel(x);\n",
                name("write.base_pointer"),
                (0..reads).map(|r| format!("in(x + c{r})")).collect::<Vec<_>>().join(", ")
            ))
        }
        IdiomKind::Stencil2D => {
            let reads = inst.family("read_value").len();
            Some(format!(
                "Func out; Var x, y;\nout(x, y) = kernel({});\nout.tile(x, y, 8, 8).vectorize(x).parallel(y);\n",
                (0..reads)
                    .map(|r| format!("in(x + cx{r}, y + cy{r})"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
        IdiomKind::Gemm => Some(
            "Func C; Var i, j; RDom k(0, K);\nC(i, j) += A(i, k) * B(k, j);\nC.tile(i, j, 16, 16).vectorize(i, 8);\n"
                .to_owned(),
        ),
        // Histograms/reductions with data-dependent indices and sparse
        // gathers are outside Halide's pure-function model.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idioms::detect;

    #[test]
    fn renders_lift_and_halide_for_detected_idioms() {
        let m = minicc_compile(
            "void blur(double* out, double* in_, int n) {
                for (int i = 1; i < n - 1; i++)
                    out[i] = 0.25*in_[i-1] + 0.5*in_[i] + 0.25*in_[i+1];
            }",
        );
        let f = m.function("blur").unwrap();
        let insts = detect(f);
        let st = insts
            .iter()
            .find(|i| i.kind == IdiomKind::Stencil1D)
            .expect("stencil");
        let lift = lift_program(f, st, "/* kernel */");
        assert!(lift.contains("slide"));
        let halide = halide_program(f, st).expect("halide handles stencils");
        assert!(halide.contains("vectorize"));
    }

    #[test]
    fn halide_refuses_histograms() {
        let m = minicc_compile(
            "void histo(int* img, int* bins, int n) {
                for (int i = 0; i < n; i++) bins[img[i]] = bins[img[i]] + 1;
            }",
        );
        let f = m.function("histo").unwrap();
        let insts = detect(f);
        let h = insts
            .iter()
            .find(|i| i.kind == IdiomKind::Histogram)
            .expect("histogram");
        assert!(halide_program(f, h).is_none());
        assert!(lift_program(f, h, "").contains("atomic_update"));
    }

    // Local copy to avoid a dev-dependency cycle in doctests.
    fn minicc_compile(src: &str) -> ssair::Module {
        minicc::compile(src, "t").expect("compiles")
    }
}
