//! # xform — translating computational idioms (paper §6)
//!
//! Once an idiom has been detected, this crate rewrites the program to use
//! a heterogeneous API:
//!
//! * **library path** (§6.1; cuBLAS/cuSPARSE-style): the matched loop nest
//!   is excised and replaced with a single `call` to a fixed-function API
//!   entry point (`gemm_f64`, `csrmv_f64`). The call's arguments are read
//!   straight out of the constraint solution, exactly like the paper's
//!   Figure 6 (`cusparseDcsrmv(...)`).
//! * **DSL path** (§6.2; Halide/Lift-style): the kernel function or
//!   reduction operator is *outlined* from the constraint solution's
//!   backward slice into a fresh IR function, a device program is
//!   generated around it (here: a regenerated IR function, standing in for
//!   the OpenCL that Lift/Halide would emit), and the original loop is
//!   replaced with a call to the generated code.
//!
//! Before any rewrite, [`check_soundness`] re-validates the §6.3 side
//! conditions natively (no unmatched side effects inside the replaced
//! region, operands available at the call site); the tests exercise the
//! rejection paths.
//!
//! [`transform_module`] scales the rewrite to the paper's actual claim —
//! *all* detected instances of a module — resolving overlapping matches
//! deterministically and reporting a per-instance
//! replaced/shadowed/failed outcome (see [`driver`]).
//!
//! [`ir_to_c`] is the paper's "rudimentary LLVM IR to C backend" used to
//! hand kernels to Lift; [`dsl`] renders Lift and Halide surface programs
//! for the extracted idioms (what the paper ships to the DSL compilers).

pub mod driver;
pub mod dsl;
pub mod outline;
pub mod replace;
pub mod reverse;
pub mod tocsrc;

pub use driver::{transform_instances, transform_module, InstanceOutcome, ModuleXform, Outcome};
pub use outline::{outline_kernel, OutlinedKernel};
pub use replace::{
    apply_replacement, apply_replacement_with, check_soundness, check_soundness_with, Replacement,
    XformError,
};
pub use reverse::{reverse_loop, reversed_module};
pub use tocsrc::ir_to_c;
