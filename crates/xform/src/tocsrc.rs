//! The "rudimentary LLVM IR to C backend" of the paper (§6.2): renders a
//! single-block pure kernel function as sequential C with the function
//! interface Lift expects.

use ssair::{BlockId, Function, Opcode, Type, ValueId, ValueKind};

fn c_type(t: &Type) -> &'static str {
    match t {
        Type::I1 => "int",
        Type::I32 => "int",
        Type::I64 => "long",
        Type::F32 => "float",
        Type::F64 => "double",
        Type::Ptr(_) => "void*",
        Type::Void => "void",
    }
}

fn c_operand(f: &Function, v: ValueId) -> String {
    match &f.value(v).kind {
        ValueKind::ConstInt(c) => format!("{c}"),
        ValueKind::ConstFloat(c) => format!("{c:?}"),
        ValueKind::Argument { index } => format!("in{index}"),
        ValueKind::Instr(_) => format!("t{}", v.0),
    }
}

/// Renders a pure, single-block kernel function as C source. Returns
/// `None` for functions the backend cannot express (control flow, memory).
#[must_use]
pub fn ir_to_c(f: &Function) -> Option<String> {
    if f.num_blocks() != 1 {
        return None;
    }
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(k, &p)| format!("{} in{k}", c_type(&f.value(p).ty)))
        .collect();
    let mut out = format!(
        "{} {}({}) {{\n",
        c_type(&f.ret_ty),
        f.name,
        params.join(", ")
    );
    for &v in &f.block(BlockId(0)).instrs {
        let i = f.instr(v)?;
        let ty = c_type(&f.value(v).ty);
        let name = format!("t{}", v.0);
        let op = |k: usize| c_operand(f, i.operands[k]);
        let line = match i.opcode {
            Opcode::Add | Opcode::FAdd => format!("{ty} {name} = {} + {};", op(0), op(1)),
            Opcode::Sub | Opcode::FSub => format!("{ty} {name} = {} - {};", op(0), op(1)),
            Opcode::Mul | Opcode::FMul => format!("{ty} {name} = {} * {};", op(0), op(1)),
            Opcode::SDiv | Opcode::FDiv => format!("{ty} {name} = {} / {};", op(0), op(1)),
            Opcode::SRem => format!("{ty} {name} = {} % {};", op(0), op(1)),
            Opcode::ICmp(p) => {
                let sym = match p {
                    ssair::ICmpPred::Eq => "==",
                    ssair::ICmpPred::Ne => "!=",
                    ssair::ICmpPred::Slt => "<",
                    ssair::ICmpPred::Sle => "<=",
                    ssair::ICmpPred::Sgt => ">",
                    ssair::ICmpPred::Sge => ">=",
                };
                format!("{ty} {name} = {} {sym} {};", op(0), op(1))
            }
            Opcode::FCmp(p) => {
                let sym = match p {
                    ssair::FCmpPred::Oeq => "==",
                    ssair::FCmpPred::One => "!=",
                    ssair::FCmpPred::Olt => "<",
                    ssair::FCmpPred::Ole => "<=",
                    ssair::FCmpPred::Ogt => ">",
                    ssair::FCmpPred::Oge => ">=",
                };
                format!("{ty} {name} = {} {sym} {};", op(0), op(1))
            }
            Opcode::Select => {
                format!("{ty} {name} = {} ? {} : {};", op(0), op(1), op(2))
            }
            Opcode::SExt
            | Opcode::ZExt
            | Opcode::Trunc
            | Opcode::SIToFP
            | Opcode::FPToSI
            | Opcode::FPExt
            | Opcode::FPTrunc => {
                format!("{ty} {name} = ({ty}){};", op(0))
            }
            Opcode::Call => {
                let callee = i.callee.as_deref()?;
                let args: Vec<String> = (0..i.operands.len())
                    .map(|k| c_operand(f, i.operands[k]))
                    .collect();
                format!("{ty} {name} = {callee}({});", args.join(", "))
            }
            Opcode::Ret => {
                if let Some(&r) = i.operands.first() {
                    format!("return {};", c_operand(f, r))
                } else {
                    "return;".to_owned()
                }
            }
            _ => return None, // memory / control flow: not a pure kernel
        };
        out.push_str("  ");
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("}\n");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssair::parser::parse_function_text;

    #[test]
    fn renders_a_mac_kernel() {
        let f = parse_function_text(
            r#"
define double @kern(double %in0, double %in1, double %in2) {
entry:
  %m = fmul double %in0, %in1
  %s = fadd double %in2, %m
  ret double %s
}
"#,
        )
        .unwrap();
        let c = ir_to_c(&f).expect("renders");
        assert!(c.contains("double kern(double in0, double in1, double in2)"));
        assert!(c.contains("= in0 * in1;"));
        assert!(c.contains("return"));
    }

    #[test]
    fn renders_calls_and_selects() {
        let f = parse_function_text(
            r#"
define double @kern(double %in0) {
entry:
  %a = call double @fabs(double %in0)
  %c = fcmp ogt double %a, 1.0
  %s = select i1 %c, double %a, 1.0
  ret double %s
}
"#,
        )
        .unwrap();
        let c = ir_to_c(&f).expect("renders");
        assert!(c.contains("fabs(in0)"));
        assert!(c.contains("? "));
    }

    #[test]
    fn refuses_memory_and_control_flow() {
        let mem = parse_function_text(
            "define double @k(double* %p) {\nentry:\n  %x = load double, double* %p\n  ret double %x\n}\n",
        )
        .unwrap();
        assert!(ir_to_c(&mem).is_none());
        let cf = parse_function_text(
            "define void @k(i1 %c) {\nentry:\n  br i1 %c, label %a, label %b\na:\n  ret void\nb:\n  ret void\n}\n",
        )
        .unwrap();
        assert!(ir_to_c(&cf).is_none());
    }
}
