//! Kernel outlining: materialize the pure backward slice of a matched
//! kernel output as a standalone IR function.
//!
//! The paper cuts the kernel function / reduction operator out of the loop
//! body and hands it to the DSL backend (§6.2). Here the slice becomes a
//! fresh [`Function`] whose parameters are the declared kernel inputs; the
//! generated device program calls it per element.

use ssair::analysis::kernel_slice;
use ssair::{BlockId, Function, Instr, Type, ValueId, ValueKind};
use std::collections::HashMap;

/// An outlined kernel: the new function plus its input signature.
#[derive(Debug, Clone)]
pub struct OutlinedKernel {
    /// The generated function (single basic block, pure).
    pub function: Function,
    /// The original values that became parameters, in parameter order.
    pub inputs: Vec<ValueId>,
}

/// Outlines the pure slice computing `output` from `inputs` in `src` as a
/// new function named `name`. Returns `None` when the slice is impure
/// (which detection should already have excluded).
#[must_use]
pub fn outline_kernel(
    src: &Function,
    output: ValueId,
    inputs: &[ValueId],
    name: &str,
) -> Option<OutlinedKernel> {
    let pure_calls = solver::PURE_CALLS;
    let slice = kernel_slice(src, output, inputs, pure_calls)?;
    // Deterministic order: original program order (value id order matches
    // creation order inside a function).
    let mut slice = slice;
    slice.sort();

    let params: Vec<(String, Type)> = inputs
        .iter()
        .enumerate()
        .map(|(k, &v)| (format!("in{k}"), src.value(v).ty.clone()))
        .collect();
    let ret_ty = src.value(output).ty.clone();
    let mut out = Function::new(name, &params, ret_ty.clone());
    let entry = BlockId(0);
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    for (k, &v) in inputs.iter().enumerate() {
        map.insert(v, out.params[k]);
    }
    let remap = |map: &HashMap<ValueId, ValueId>,
                 out: &mut Function,
                 src: &Function,
                 v: ValueId|
     -> ValueId {
        if let Some(&m) = map.get(&v) {
            return m;
        }
        match &src.value(v).kind {
            ValueKind::ConstInt(c) => out.const_int(src.value(v).ty.clone(), *c),
            ValueKind::ConstFloat(c) => out.const_float(src.value(v).ty.clone(), *c),
            ValueKind::Argument { .. } => {
                unreachable!("free arguments must be declared kernel inputs")
            }
            ValueKind::Instr(_) => unreachable!("slice is topologically ordered"),
        }
    };
    // Arguments reachable from the slice that are not declared inputs are
    // promoted to extra parameters (loop-invariant scalars like `alpha`).
    let mut extra_inputs: Vec<ValueId> = Vec::new();
    for &v in &slice {
        let operands = src.instr(v).expect("slice instruction").operands.clone();
        for op in operands {
            if map.contains_key(&op) || src.is_constant(op) {
                continue;
            }
            if src.is_argument(op) || !slice.contains(&op) {
                // Free value: becomes an extra parameter.
                let idx = out.params.len();
                let p = {
                    let ty = src.value(op).ty.clone();
                    // Extend the signature.
                    let name = format!("in{idx}");
                    out.add_param(&name, ty)
                };
                map.insert(op, p);
                extra_inputs.push(op);
            }
        }
    }
    for &v in &slice {
        let instr = src.instr(v).expect("slice instruction").clone();
        let operands: Vec<ValueId> = instr
            .operands
            .iter()
            .map(|&op| remap(&map, &mut out, src, op))
            .collect();
        let cloned = Instr {
            opcode: instr.opcode,
            operands,
            incoming: Vec::new(),
            targets: Vec::new(),
            callee: instr.callee.clone(),
        };
        let new_v = out.append(entry, src.value(v).ty.clone(), cloned);
        map.insert(v, new_v);
    }
    let result = if let Some(&m) = map.get(&output) {
        m
    } else {
        remap(&map, &mut out, src, output)
    };
    out.append_ret(entry, Some(result));
    let mut inputs_all: Vec<ValueId> = inputs.to_vec();
    inputs_all.extend(extra_inputs);
    Some(OutlinedKernel {
        function: out,
        inputs: inputs_all,
    })
}

/// Trivial kernels (`output` *is* one of the inputs) still outline: the
/// generated function returns its parameter.
#[cfg(test)]
mod tests {
    use super::*;
    use ssair::parser::parse_function_text;

    fn get(f: &Function, name: &str) -> ValueId {
        f.named(name)
            .unwrap_or_else(|| panic!("no value named {name}"))
    }

    #[test]
    fn outlines_pure_arithmetic() {
        let src = parse_function_text(
            r#"
define void @host(double* %p, double %u, double %v) {
entry:
  %m = fmul double %u, %v
  %s = fadd double %m, 1.5
  store double %s, double* %p
  ret void
}
"#,
        )
        .unwrap();
        let u = src.params[1];
        let v = src.params[2];
        let s = get(&src, "s");
        let k = outline_kernel(&src, s, &[u, v], "kern").expect("outlines");
        assert_eq!(k.function.params.len(), 2);
        ssair::verify::verify_function(&k.function).expect("outlined kernel verifies");
        let text = format!("{}", k.function);
        assert!(text.contains("fmul"));
        assert!(text.contains("ret double"));
    }

    #[test]
    fn promotes_free_arguments_to_parameters() {
        let src = parse_function_text(
            r#"
define void @host(double* %p, double %x, double %alpha) {
entry:
  %m = fmul double %x, %alpha
  store double %m, double* %p
  ret void
}
"#,
        )
        .unwrap();
        let x = src.params[1];
        let m = get(&src, "m");
        // alpha is NOT declared; it must be promoted.
        let k = outline_kernel(&src, m, &[x], "kern").expect("outlines");
        assert_eq!(k.function.params.len(), 2, "x plus promoted alpha");
        assert_eq!(k.inputs.len(), 2);
    }

    #[test]
    fn refuses_impure_slices() {
        let src = parse_function_text(
            r#"
define void @host(double* %p, double* %q) {
entry:
  %x = load double, double* %q
  %m = fmul double %x, 2.0
  store double %m, double* %p
  ret void
}
"#,
        )
        .unwrap();
        let m = get(&src, "m");
        assert!(outline_kernel(&src, m, &[], "kern").is_none());
    }

    #[test]
    fn identity_kernel_outlines() {
        let src = parse_function_text(
            r#"
define void @host(double* %p, double %x) {
entry:
  store double %x, double* %p
  ret void
}
"#,
        )
        .unwrap();
        let x = src.params[1];
        let k = outline_kernel(&src, x, &[x], "kern").expect("outlines");
        ssair::verify::verify_function(&k.function).expect("verifies");
    }

    #[test]
    fn whitelisted_math_calls_are_cloned() {
        let src = parse_function_text(
            r#"
define void @host(double* %p, double %x) {
entry:
  %r = call double @sqrt(double %x)
  %s = fadd double %r, 1.0
  store double %s, double* %p
  ret void
}
"#,
        )
        .unwrap();
        let x = src.params[1];
        let s = get(&src, "s");
        let k = outline_kernel(&src, s, &[x], "kern").expect("outlines");
        let text = format!("{}", k.function);
        assert!(text.contains("call double @sqrt"));
    }
}
