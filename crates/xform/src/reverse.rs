//! Reversed-iteration rewriting for the parallel-safety oracle.
//!
//! An `IndependentIterations` certificate claims that the iterations of a
//! region's outermost loop can execute in *any* order. The cheapest
//! dynamic witness for that claim is the opposite order: rewrite the loop
//! to run from `end - 1` down to `init` and compare the final machine
//! state bitwise against the forward run. Independent iterations commute
//! even in floating point (there is no cross-iteration accumulation to
//! re-associate), so the reversed program must be *exactly* equivalent —
//! any divergence convicts the certificate, not the tolerance.
//!
//! [`reverse_loop`] handles the counted-loop shape the frontend emits and
//! the affine pass recognises: a header phi with step `+1` guarded by
//! `icmp slt iv, end` in the header. Anything else is refused with a
//! reason (the oracle then simply skips the region — a refusal is a
//! coverage gap, never a wrong answer).

use ssair::analysis::{Analyses, IndVar};
use ssair::{Function, ICmpPred, Module, Opcode, ValueId};

/// Rewrites the counted loop of the induction variable `iv` (a header
/// phi) in place so its iterations run in reverse order:
///
/// * preheader gains `last = add end, -1`,
/// * the phi's init operand becomes `last`,
/// * the step becomes `add iv, -1`,
/// * the guard becomes `icmp sge iv, init`.
///
/// An empty forward loop (`init >= end`) stays empty: it starts at
/// `end - 1 < init` and the new guard fails immediately.
///
/// Returns the reason when the loop does not have the supported shape.
pub fn reverse_loop(f: &mut Function, iv: ValueId) -> Result<(), String> {
    let an = Analyses::new(f);
    let map = ssair::analysis::AffineMap::new(f, &an);
    let Some(info) = map.iv(iv) else {
        return Err("not a recognised induction variable".into());
    };
    let info: IndVar = info.clone();
    if info.step != 1 {
        return Err(format!("unsupported step {}", info.step));
    }
    // The loop must carry no other state: a second header phi (an
    // accumulator) would be order-sensitive.
    let other_phi = f
        .block(info.header)
        .instrs
        .iter()
        .any(|&v| v != iv && f.opcode(v) == Some(Opcode::Phi));
    if other_phi {
        return Err("header carries another phi".into());
    }
    // Exactly two incoming edges: the latch (carrying `next`) and the
    // preheader (carrying `init`).
    let phi = f.instr(iv).expect("ivs are phis");
    if phi.operands.len() != 2 {
        return Err(format!("{} incoming edges", phi.operands.len()));
    }
    let Some(latch_idx) = phi.operands.iter().position(|&o| o == info.next) else {
        return Err("latch edge does not carry the step".into());
    };
    let init_idx = 1 - latch_idx;
    let preheader = phi.incoming[init_idx];
    // Header guard: `condbr (icmp slt iv, end)` as the terminator.
    let Some(&guard_br) = f.block(info.header).instrs.last() else {
        return Err("empty header".into());
    };
    let br = f.instr(guard_br).expect("blocks end in instructions");
    if br.opcode != Opcode::CondBr {
        return Err("header does not end in a conditional branch".into());
    }
    let cond = br.operands[0];
    let Some(cmp) = f.instr(cond) else {
        return Err("guard condition is not an instruction".into());
    };
    if cmp.opcode != Opcode::ICmp(ICmpPred::Slt) || cmp.operands[0] != iv {
        return Err("guard is not `icmp slt iv, end`".into());
    }
    let end = cmp.operands[1];
    // `end - 1` is inserted at the bottom of the preheader, so `end`
    // must already be available there.
    let end_available = f.is_constant(end)
        || f.is_argument(end)
        || f.find_block_of(end)
            .is_some_and(|b| an.dom.dominates(b, preheader));
    if !end_available {
        return Err("loop bound is not available in the preheader".into());
    }
    let latch = phi.incoming[latch_idx];
    let ty = f.value(iv).ty.clone();

    // All checks passed — mutate. The old step (`iv + 1`) is left in
    // place untouched: bodies often reuse it as data (`rowptr[i+1]`),
    // and the frontend CSEs that use with the increment. The reversed
    // loop gets a *fresh* decrement feeding the phi instead.
    let minus_one = f.const_int(ty.clone(), -1);
    let last = insert_before_terminator(f, preheader, ty.clone(), vec![end, minus_one]);
    let dec = insert_before_terminator(f, latch, ty, vec![iv, minus_one]);
    let init = {
        let phi = f.instr_mut(iv).expect("ivs are phis");
        let init = phi.operands[init_idx];
        phi.operands[init_idx] = last;
        phi.operands[latch_idx] = dec;
        init
    };
    let cmp = f.instr_mut(cond).expect("guards are instructions");
    cmp.opcode = Opcode::ICmp(ICmpPred::Sge);
    cmp.operands = vec![iv, init];
    Ok(())
}

/// Appends `add operands` to `block`, then moves it in front of the
/// block terminator.
fn insert_before_terminator(
    f: &mut Function,
    block: ssair::BlockId,
    ty: ssair::Type,
    operands: Vec<ValueId>,
) -> ValueId {
    let v = f.append_simple(block, ty, Opcode::Add, operands);
    let instrs = &mut f.block_mut(block).instrs;
    let appended = instrs.pop().expect("just appended");
    let at = instrs.len() - 1;
    instrs.insert(at, appended);
    v
}

/// Clones `m` and reverses the loop of `iv` inside function `func`.
/// `ValueId`s are stable across the clone, so `iv` can come straight
/// from a detection binding against the original module.
pub fn reversed_module(m: &Module, func: &str, iv: ValueId) -> Result<Module, String> {
    let mut out = m.clone();
    let f = out
        .functions
        .iter_mut()
        .find(|f| f.name == func)
        .ok_or_else(|| format!("no function {func}"))?;
    reverse_loop(f, iv)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssair::parser::parse_function_text;

    const FILL: &str = r#"
define void @fill(double* %a, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %fi = sitofp i64 %i to double
  %p = getelementptr double, double* %a, i64 %i
  store double %fi, double* %p
  %i.next = add i64 %i, 1
  br label %h
x:
  ret void
}
"#;

    #[test]
    fn reversed_fill_writes_the_same_elements() {
        let mut f = parse_function_text(FILL).unwrap();
        let iv = f.named("i").unwrap();
        reverse_loop(&mut f, iv).unwrap();
        // The rewritten function still verifies structurally.
        let mut m = Module::new("t");
        m.functions.push(f);
        ssair::verify::verify_module(&m).unwrap();
        // And the new guard is `icmp sge i, 0`.
        let f = m.function("fill").unwrap();
        let c = f.named("c").unwrap();
        assert_eq!(f.opcode(c), Some(Opcode::ICmp(ICmpPred::Sge)));
    }

    #[test]
    fn accumulator_loops_are_refused() {
        let mut f = parse_function_text(
            r#"
define double @sum(double* %a, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %acc = phi double [ 0.0, %entry ], [ %acc.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %p = getelementptr double, double* %a, i64 %i
  %v = load double, double* %p
  %acc.next = fadd double %acc, %v
  %i.next = add i64 %i, 1
  br label %h
x:
  ret double %acc
}
"#,
        )
        .unwrap();
        let iv = f.named("i").unwrap();
        let e = reverse_loop(&mut f, iv).unwrap_err();
        assert!(e.contains("another phi"), "{e}");
    }

    #[test]
    fn step_value_reused_as_data_is_preserved() {
        // `i + 1` feeds both the phi and a gep (the `rowptr[i+1]` CSE
        // shape): the reversal must leave the data use at `+1` and give
        // the phi a fresh `-1` step.
        let mut f = parse_function_text(
            r#"
define void @shift(double* %a, i64 %n) {
entry:
  br label %h
h:
  %i = phi i64 [ 0, %entry ], [ %i.next, %b ]
  %c = icmp slt i64 %i, %n
  br i1 %c, label %b, label %x
b:
  %i.next = add i64 %i, 1
  %p = getelementptr double, double* %a, i64 %i.next
  store double 1.0, double* %p
  br label %h
x:
  ret void
}
"#,
        )
        .unwrap();
        let iv = f.named("i").unwrap();
        let next = f.named("i.next").unwrap();
        reverse_loop(&mut f, iv).unwrap();
        // The old `+1` survives for the gep...
        let old = f.instr(next).unwrap();
        assert_eq!(old.operands[0], iv);
        // ...and the phi's latch operand is a new decrement, not `next`.
        let phi = f.instr(iv).unwrap();
        assert!(!phi.operands.contains(&next), "{:?}", phi.operands);
        let mut m = Module::new("t");
        m.functions.push(f);
        ssair::verify::verify_module(&m).unwrap();
    }
}
