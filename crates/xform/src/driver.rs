//! Whole-module transformation (paper §6 at suite scale): apply *every*
//! detected idiom replacement in a module, not just a hand-picked first
//! instance.
//!
//! Two problems make this more than a loop over [`apply_replacement`]:
//!
//! 1. **Overlaps.** Detected instances can claim the same loop blocks —
//!    the dot-product loop inside a GEMM nest is itself a scalar
//!    reduction, two same-kind matches can share a loop. Replacing both
//!    would excise a region twice. [`transform_instances`] attempts
//!    instances in a deterministic priority order — within a function,
//!    the instance covering more blocks first (outermost loop), ties
//!    broken by idiom priority ([`IdiomKind::ALL`] order, most specific
//!    first), then anchor id — and an instance is skipped as
//!    [`Outcome::Shadowed`] only when it overlaps an instance that was
//!    actually *replaced* (whose region the rewrite excised). A refused
//!    higher-priority attempt shadows nothing: the instances it
//!    overlapped still get their own attempt on their intact regions.
//! 2. **IR churn.** Each excision compacts block ids
//!    (`remove_unreachable_blocks`), so instances detected against the
//!    original function hold stale regions once a sibling has been
//!    replaced. Value ids are stable, so every instance re-anchors its
//!    region on its outer iterator phi ([`IdiomInstance::refresh_blocks`])
//!    immediately before its own soundness check and rewrite.
//!
//! Failures are isolated: each replacement is applied to a scratch clone
//! of the module and only committed on success, so an [`XformError`]
//! (unsupported shape, §6.3 unsoundness) never leaves half-rewritten
//! functions or orphan generated kernels behind for later instances.

use crate::replace::{apply_replacement_with, Replacement, XformError};
use analysis::ParamAliasFacts;
use idioms::{IdiomInstance, IdiomKind};
use ssair::Module;

/// What happened to one detected instance during whole-module
/// transformation.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// The loop was excised and replaced by an API call.
    Replaced(Replacement),
    /// The instance overlaps a higher-value instance that *was replaced*
    /// (its region no longer exists) and was skipped.
    Shadowed {
        /// Index of the replaced winning instance in
        /// [`ModuleXform::outcomes`].
        by: usize,
    },
    /// The backend refused the rewrite; the module is unchanged for this
    /// instance.
    Failed(XformError),
}

impl Outcome {
    /// `true` for [`Outcome::Replaced`].
    #[must_use]
    pub fn is_replaced(&self) -> bool {
        matches!(self, Outcome::Replaced(_))
    }
}

/// One instance paired with its transformation outcome.
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// The detected instance (as detected: original block numbering).
    pub instance: IdiomInstance,
    /// What the driver did with it.
    pub outcome: Outcome,
}

/// The result of whole-module transformation.
#[derive(Debug)]
pub struct ModuleXform {
    /// The transformed module (every committed replacement applied).
    pub module: Module,
    /// Per-instance outcomes, in detection order.
    pub outcomes: Vec<InstanceOutcome>,
}

impl ModuleXform {
    /// Number of applied replacements.
    #[must_use]
    pub fn replaced(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.outcome.is_replaced())
            .count()
    }

    /// The parallel-safety certificate of every callee introduced by a
    /// committed replacement, keyed by callee symbol. Library entry
    /// points (`gemm_f64`, `csrmv_f64`) can be shared by several
    /// replacements; the weakest certificate wins, so an executor keyed
    /// off this map is safe for every call site.
    #[must_use]
    pub fn certificates(&self) -> std::collections::BTreeMap<String, idioms::ParallelSafety> {
        let mut map = std::collections::BTreeMap::new();
        for o in &self.outcomes {
            if let Outcome::Replaced(rep) = &o.outcome {
                map.entry(rep.callee.clone())
                    .and_modify(|s: &mut idioms::ParallelSafety| {
                        *s = (*s).max(rep.certificate.safety);
                    })
                    .or_insert(rep.certificate.safety);
            }
        }
        map
    }
}

fn kind_rank(kind: IdiomKind) -> usize {
    IdiomKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind is in ALL")
}

fn overlaps(a: &IdiomInstance, b: &IdiomInstance) -> bool {
    a.function == b.function && a.blocks.iter().any(|blk| b.blocks.contains(blk))
}

/// Detects all idiom instances in `module` (via [`idioms::detect_module`])
/// and applies every non-overlapping replacement.
#[must_use]
pub fn transform_module(module: &Module) -> ModuleXform {
    transform_instances(module, idioms::detect_module(module))
}

/// [`transform_module`] over a caller-provided instance list (e.g. from
/// [`idioms::detect_module_with`] with custom limits).
#[must_use]
pub fn transform_instances(module: &Module, instances: Vec<IdiomInstance>) -> ModuleXform {
    // Deterministic attempt order (on the original, consistent block
    // ids): outermost (largest region) first, then idiom priority, then
    // the owning function, then anchor id. The function name must be in
    // the key: anchors are per-function value ids, so two structurally
    // identical instances in different functions collide on every other
    // component — without it the tie fell through to input position and
    // shuffling the input order swapped the uids (and thus the names) of
    // the generated device kernels.
    let n = instances.len();
    let mut priority: Vec<usize> = (0..n).collect();
    priority.sort_by(|&x, &y| {
        let a = &instances[x];
        let b = &instances[y];
        (
            usize::MAX - a.blocks.len(), // outermost (largest region) first
            kind_rank(a.kind),           // most specific idiom first
            &a.function,
            a.anchor,
            x, // unreachable for distinct instances; stabilizes duplicates
        )
            .cmp(&(
                usize::MAX - b.blocks.len(),
                kind_rank(b.kind),
                &b.function,
                b.anchor,
                y,
            ))
    });

    // Resolution and application interleave: an instance is shadowed
    // only by an instance that actually *replaced* (its region is the
    // one that got excised). When a higher-priority overlapping attempt
    // is refused, the loop below still reaches the lower-priority
    // instance — its region is intact, so it gets its own attempt
    // instead of being skipped for nothing.
    // Call-site alias facts are a whole-module property; compute them once
    // on the pristine module (replacements only excise loops inside the
    // functions detection already ran on, so the facts stay valid).
    let facts = ParamAliasFacts::of_module(module);
    let mut out = module.clone();
    let mut outcomes: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
    let mut replaced_idx: Vec<usize> = Vec::new();
    let mut uid = 0usize;
    for &i in &priority {
        if let Some(&w) = replaced_idx
            .iter()
            .find(|&&w| overlaps(&instances[w], &instances[i]))
        {
            outcomes[i] = Some(Outcome::Shadowed { by: w });
            continue;
        }
        // Scratch clone: a refused rewrite must not leave partially
        // generated functions in the committed module.
        let mut trial = out.clone();
        let mut fresh = instances[i].clone();
        let refreshed = trial
            .function(&fresh.function)
            .is_some_and(|f| fresh.refresh_blocks(f));
        outcomes[i] = Some(if !refreshed {
            Outcome::Failed(XformError::Unsupported(
                "instance region no longer exists after earlier replacements".into(),
            ))
        } else {
            match apply_replacement_with(&mut trial, &fresh, uid, Some(&facts)) {
                Ok(rep) => {
                    uid += 1;
                    out = trial;
                    replaced_idx.push(i);
                    Outcome::Replaced(rep)
                }
                Err(e) => Outcome::Failed(e),
            }
        });
    }
    ModuleXform {
        module: out,
        outcomes: instances
            .into_iter()
            .zip(outcomes)
            .map(|(instance, outcome)| InstanceOutcome {
                instance,
                outcome: outcome.expect("every instance visited"),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        minicc::compile(src, "t").expect("compiles")
    }

    const GEMM_SRC: &str = "void mm(double* M1, double* M2, double* M3, int n) {
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
                M3[i*n+j] = 0.0;
                for (int k = 0; k < n; k++)
                    M3[i*n+j] += M1[i*n+k] * M2[k*n+j];
            }
    }";

    #[test]
    fn nested_idioms_keep_the_outermost_instance() {
        // The paper's canonical containment: the dot-product loop inside
        // a GEMM nest is itself a scalar reduction. The detector's
        // matrix-read constraints keep it from matching independently, so
        // reconstruct the contained instance from the GEMM's own dot
        // bindings — the driver must keep the outermost GEMM and shadow
        // the inner reduction, regardless of input order.
        let module = compile(GEMM_SRC);
        let instances = idioms::detect_module(&module);
        let gemm = instances
            .iter()
            .find(|i| i.kind == IdiomKind::Gemm)
            .expect("GEMM detected")
            .clone();
        let f = module.function(&gemm.function).unwrap();
        let mut inner = gemm.clone();
        inner.kind = IdiomKind::Reduction;
        inner.anchor = gemm.value("dot.acc").expect("dot accumulator bound");
        inner.bindings.insert(
            "iterator".into(),
            gemm.value("loop[2].iterator")
                .expect("inner iterator bound"),
        );
        assert!(inner.refresh_blocks(f), "inner loop region recomputes");
        assert!(
            inner.blocks.len() < gemm.blocks.len()
                && inner.blocks.iter().all(|b| gemm.blocks.contains(b)),
            "dot-product loop is strictly contained in the GEMM nest"
        );
        // Contained instance listed FIRST: the winner is picked by
        // region size/priority, not input order.
        let xf = transform_instances(&module, vec![inner, gemm]);
        assert!(
            matches!(xf.outcomes[0].outcome, Outcome::Shadowed { by: 1 }),
            "inner reduction must be shadowed by the GEMM, got {:?}",
            xf.outcomes[0].outcome
        );
        assert!(
            xf.outcomes[1].outcome.is_replaced(),
            "GEMM wins: {:?}",
            xf.outcomes[1].outcome
        );
        assert_eq!(xf.replaced(), 1);
    }

    #[test]
    fn same_loop_reductions_resolve_deterministically() {
        // Two accumulators in one loop: two genuine Reduction instances
        // claiming the same blocks. The first attempt is refused as
        // Unsound (the other accumulator escapes the region), and
        // because nothing was replaced the second instance is NOT
        // shadowed — it gets its own attempt and fails the same way.
        // No replacement may silently drop either accumulator.
        let src = "double two(double* x, double* y, int n) {
            double a = 0.0;
            double b = 0.0;
            for (int i = 0; i < n; i++) { a += x[i]; b += y[i]; }
            return a + b;
        }";
        let module = compile(src);
        let instances = idioms::detect_module(&module);
        let reds = instances
            .iter()
            .filter(|i| i.kind == IdiomKind::Reduction)
            .count();
        assert_eq!(reds, 2, "both accumulators detected");
        let xf = transform_instances(&module, instances);
        let unsound = xf
            .outcomes
            .iter()
            .filter(|o| matches!(&o.outcome, Outcome::Failed(XformError::Unsound(_))))
            .count();
        assert_eq!(unsound, 2, "outcomes: {:?}", xf.outcomes);
        assert_eq!(xf.replaced(), 0);
        assert_eq!(
            xf.module.functions.len(),
            module.functions.len(),
            "module unchanged"
        );
    }

    #[test]
    fn failed_winner_does_not_shadow_a_replaceable_loser() {
        // An outer instance that loses its rewrite must not take its
        // contained instances down with it. Forge the containment: a
        // pseudo-GEMM claiming the whole function of a perfectly
        // replaceable reduction, with a binding shape the GEMM backend
        // refuses (no zero-based bounds). The reduction must still be
        // replaced, not reported as shadowed by a failure.
        let src = "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i++) a += x[i];
            return a;
        }";
        let module = compile(src);
        let instances = idioms::detect_module(&module);
        let red = instances
            .iter()
            .find(|i| i.kind == IdiomKind::Reduction)
            .expect("reduction detected")
            .clone();
        let f = module.function(&red.function).unwrap();
        let mut outer = red.clone();
        outer.kind = IdiomKind::Gemm; // wrong bindings: apply will refuse
        outer.blocks = f.block_ids().collect(); // claims everything
        outer
            .bindings
            .insert("loop[0].iterator".into(), red.value("iterator").unwrap());
        let xf = transform_instances(&module, vec![red, outer]);
        assert!(
            matches!(xf.outcomes[1].outcome, Outcome::Failed(_)),
            "outer pseudo-GEMM must fail: {:?}",
            xf.outcomes[1].outcome
        );
        assert!(
            xf.outcomes[0].outcome.is_replaced(),
            "contained reduction must be replaced, not shadowed by a failure: {:?}",
            xf.outcomes[0].outcome
        );
        // Every Shadowed edge, when present, points at a Replaced winner.
        for o in &xf.outcomes {
            if let Outcome::Shadowed { by } = o.outcome {
                assert!(xf.outcomes[by].outcome.is_replaced());
            }
        }
    }

    #[test]
    fn adjacent_idioms_are_all_replaced() {
        // Two back-to-back reductions in one function: disjoint regions,
        // both must be rewritten (block-id churn from the first excision
        // must not derail the second).
        let src = "double two(double* x, double* y, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i++) a += x[i];
            double b = 1.0;
            for (int i = 0; i < n; i++) b = b * y[i];
            return a + b;
        }";
        let module = compile(src);
        let xf = transform_module(&module);
        let reds: Vec<_> = xf
            .outcomes
            .iter()
            .filter(|o| o.instance.kind == IdiomKind::Reduction)
            .collect();
        assert_eq!(reds.len(), 2, "both reductions detected");
        for o in &reds {
            assert!(o.outcome.is_replaced(), "got {:?}", o.outcome);
        }
        assert_eq!(xf.replaced(), 2);
        // Distinct uids for the generated device programs.
        let callees: std::collections::BTreeSet<String> = xf
            .outcomes
            .iter()
            .filter_map(|o| match &o.outcome {
                Outcome::Replaced(r) => Some(r.callee.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(callees.len(), 2, "fresh uid per replacement: {callees:?}");
    }

    #[test]
    fn overlap_resolution_is_deterministic() {
        // Two probes, two independent transform passes each: identical
        // outcome sequences, shadow edges included.
        let describe = |xf: &ModuleXform| -> Vec<String> {
            xf.outcomes
                .iter()
                .map(|o| match &o.outcome {
                    Outcome::Replaced(r) => format!("{:?}:replaced:{}", o.instance.kind, r.callee),
                    Outcome::Shadowed { by } => format!("{:?}:shadowed:{by}", o.instance.kind),
                    Outcome::Failed(e) => format!("{:?}:failed:{e}", o.instance.kind),
                })
                .collect()
        };
        // Same-loop overlap, straight from detection (both fail Unsound).
        let two = compile(
            "double two(double* x, double* y, int n) {
                double a = 0.0;
                double b = 0.0;
                for (int i = 0; i < n; i++) { a += x[i]; b += y[i]; }
                return a + b;
            }",
        );
        assert_eq!(
            describe(&transform_module(&two)),
            describe(&transform_module(&two))
        );
        // Nested overlap with a real shadow edge (GEMM + forged inner
        // dot-product reduction, as in the nested test above).
        let module = compile(GEMM_SRC);
        let pair = || {
            let gemm = idioms::detect_module(&module)
                .into_iter()
                .find(|i| i.kind == IdiomKind::Gemm)
                .unwrap();
            let f = module.function(&gemm.function).unwrap();
            let mut inner = gemm.clone();
            inner.kind = IdiomKind::Reduction;
            inner.anchor = gemm.value("dot.acc").unwrap();
            inner
                .bindings
                .insert("iterator".into(), gemm.value("loop[2].iterator").unwrap());
            assert!(inner.refresh_blocks(f));
            vec![inner, gemm]
        };
        let a = describe(&transform_instances(&module, pair()));
        let b = describe(&transform_instances(&module, pair()));
        assert!(
            a.iter().any(|s| s.contains(":shadowed:")),
            "the probe must actually exercise overlap resolution: {a:?}"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn failed_replacements_leave_no_orphan_functions() {
        // A strided reduction is detected but Unsupported; the committed
        // module must be byte-identical to the input (no half-generated
        // kernels).
        let src = "double s(double* x, int n) {
            double a = 0.0;
            for (int i = 0; i < n; i += 3) a += x[i];
            return a;
        }";
        let module = compile(src);
        let xf = transform_module(&module);
        assert!(xf
            .outcomes
            .iter()
            .any(|o| matches!(o.outcome, Outcome::Failed(XformError::Unsupported(_)))));
        assert_eq!(xf.replaced(), 0);
        assert_eq!(
            xf.module.functions.len(),
            module.functions.len(),
            "no generated functions may leak from failed attempts"
        );
    }
}
