//! Idiom replacement (paper §6.1/§6.2) with native soundness checks
//! (§6.3).
//!
//! The matched loop nest is excised: the preheader branch is retargeted to
//! the loop's successor block, a call is inserted before it, and the
//! now-unreachable loop blocks are removed. For the library path the call
//! targets a fixed-function API entry point (`gemm_f64`, `csrmv_f64` —
//! installed by the `hetero` crate); for the DSL path this crate first
//! *generates* the device program (an IR function standing in for the
//! OpenCL that Lift/Halide would emit) around the outlined kernel, and the
//! call targets the generated code.

use crate::outline::outline_kernel;
use analysis::{LegalityVerdict, ParamAliasFacts, SafetyCertificate, VerdictKind};
use idioms::{IdiomInstance, IdiomKind};
use ssair::analysis::{AffineMap, Analyses};
use ssair::pass::{eliminate_dead_code, remove_unreachable_blocks, replace_all_uses};
use ssair::{Function, ICmpPred, Module, Opcode, Type, ValueId, ValueKind};

/// A transformation failure. `Unsupported` marks idiom shapes the backend
/// cannot express (detection stands, no rewrite happens); `Unsound` marks
/// §6.3 violations (side effects or live-outs the replacement would lose).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XformError {
    /// Shape outside the backend's calling convention.
    Unsupported(String),
    /// Replacement would change observable behaviour.
    Unsound(String),
}

impl std::fmt::Display for XformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XformError::Unsupported(m) => write!(f, "unsupported idiom shape: {m}"),
            XformError::Unsound(m) => write!(f, "replacement would be unsound: {m}"),
        }
    }
}

impl std::error::Error for XformError {}

type Result<T> = std::result::Result<T, XformError>;

/// Description of an applied replacement.
#[derive(Debug, Clone)]
pub struct Replacement {
    /// The idiom kind.
    pub kind: IdiomKind,
    /// The API entry point or generated device function the call targets.
    pub callee: String,
    /// Names of functions generated and appended to the module (outlined
    /// kernels + device programs); empty for library calls.
    pub generated: Vec<String>,
    /// The legality verdict that admitted this replacement (never
    /// [`VerdictKind::Rejected`] — rejection aborts the rewrite as
    /// [`XformError::Unsound`] before anything commits).
    pub verdict: LegalityVerdict,
    /// The parallel-safety certificate of the excised region, refined
    /// with whatever call-site alias facts the caller supplied.
    pub certificate: SafetyCertificate,
}

/// The kind/callee/generated description of a committed rewrite; verdict
/// and certificate are stamped on by [`apply_replacement_with`] from the
/// admission check that already ran before the per-kind backend.
fn base_replacement(kind: IdiomKind, callee: String, generated: Vec<String>) -> Replacement {
    Replacement {
        kind,
        callee,
        generated,
        verdict: LegalityVerdict {
            kind: VerdictKind::Rejected,
            evidence: vec!["verdict not yet stamped".into()],
        },
        certificate: SafetyCertificate::serial("certificate not yet stamped"),
    }
}

fn bind(inst: &IdiomInstance, name: &str) -> Result<ValueId> {
    inst.value(name)
        .ok_or_else(|| XformError::Unsupported(format!("missing binding {name:?}")))
}

fn const_f64(f: &Function, v: ValueId) -> Option<f64> {
    match f.value(v).kind {
        ValueKind::ConstFloat(c) => Some(c),
        _ => None,
    }
}

fn const_i64(f: &Function, v: ValueId) -> Option<i64> {
    match f.value(v).kind {
        ValueKind::ConstInt(c) => Some(c),
        _ => None,
    }
}

/// All stores and impure calls inside the instance's loop region.
fn region_side_effects(f: &Function, inst: &IdiomInstance) -> (Vec<ValueId>, Vec<ValueId>) {
    let mut stores = Vec::new();
    let mut calls = Vec::new();
    for &b in &inst.blocks {
        for &v in &f.block(b).instrs {
            match f.opcode(v) {
                Some(Opcode::Store) => stores.push(v),
                Some(Opcode::Call) => {
                    let pure = f
                        .instr(v)
                        .and_then(|i| i.callee.as_deref())
                        .is_some_and(|c| solver::PURE_CALLS.contains(&c));
                    if !pure {
                        calls.push(v);
                    }
                }
                _ => {}
            }
        }
    }
    (stores, calls)
}

/// Values defined inside the region that are used outside it.
fn region_live_outs(f: &Function, an: &Analyses, inst: &IdiomInstance) -> Vec<ValueId> {
    let mut outs = Vec::new();
    for &b in &inst.blocks {
        for &v in &f.block(b).instrs {
            let escapes = an.defuse.users(v).iter().any(|&u| {
                an.layout
                    .block_of(u)
                    .is_none_or(|ub| !inst.blocks.contains(&ub))
            });
            if escapes {
                outs.push(v);
            }
        }
    }
    outs
}

/// Re-validates the §6.3 side conditions for replacing `inst` in `f`:
/// the region must contain no memory writes or impure calls beyond the
/// matched ones, and no values other than the matched result may flow out
/// of the region.
pub fn check_soundness(f: &Function, inst: &IdiomInstance) -> Result<()> {
    check_soundness_with(f, inst, None).map(|_| ())
}

/// [`check_soundness`] upgraded with module-level call-site alias facts:
/// returns the evidence-carrying legality verdict that admits the
/// replacement plus the region's refined parallel-safety certificate.
/// A [`VerdictKind::Rejected`] verdict surfaces as
/// [`XformError::Unsound`] — nothing is committed for it.
pub fn check_soundness_with(
    f: &Function,
    inst: &IdiomInstance,
    facts: Option<&ParamAliasFacts>,
) -> Result<(LegalityVerdict, SafetyCertificate)> {
    let an = Analyses::new(f);
    let (stores, calls) = region_side_effects(f, inst);
    if !calls.is_empty() {
        return Err(XformError::Unsound(
            "impure call inside the replaced region".into(),
        ));
    }
    let allowed_result: Option<ValueId> = match inst.kind {
        IdiomKind::Reduction => Some(bind(inst, "acc")?),
        _ => None,
    };
    let allowed_stores: Vec<ValueId> = match inst.kind {
        IdiomKind::Reduction => vec![],
        IdiomKind::Histogram => vec![bind(inst, "store")?],
        IdiomKind::Stencil1D | IdiomKind::Stencil2D => vec![bind(inst, "write.store")?],
        IdiomKind::Spmv | IdiomKind::Gemm => vec![bind(inst, "output.store")?],
    };
    for s in stores {
        if allowed_stores.contains(&s) {
            continue;
        }
        // GEMM tolerates the output-zeroing store of the Figure-8 second
        // form: same output object, zero value, and a zero-initialized
        // accumulator — the replacement overwrites the output anyway.
        if inst.kind == IdiomKind::Gemm {
            let store_addr = f.instr(s).expect("store").operands[1];
            let out_base = bind(inst, "output.base_pointer")?;
            let zeroed = const_f64(f, f.instr(s).expect("store").operands[0]) == Some(0.0);
            let init_zero = const_f64(f, bind(inst, "dot.init")?) == Some(0.0)
                || matches!(f.opcode(bind(inst, "dot.init")?), Some(Opcode::Load));
            if address_root(f, store_addr) == address_root(f, out_base) && zeroed && init_zero {
                continue;
            }
        }
        return Err(XformError::Unsound(format!(
            "unmatched store {} inside the replaced region",
            f.display_name(s)
        )));
    }
    // Live-outs: only the matched result value may escape.
    for v in region_live_outs(f, &an, inst) {
        if Some(v) == allowed_result {
            continue;
        }
        return Err(XformError::Unsound(format!(
            "value {} defined in the region is used after it",
            f.display_name(v)
        )));
    }
    // Restrict-model legality (§6.3): the region must be pure outside the
    // memory objects the instance reports — every live load rooted at a
    // reported input (or output), every store at a reported output — and
    // every read/write object pair must be proven or assumed disjoint
    // (same-object pairs need per-iteration disjoint affine subscripts).
    let reads: Vec<ValueId> = inst
        .bindings
        .iter()
        .filter(|(k, _)| k.ends_with(".base_pointer") || k.as_str() == "bins")
        .map(|(_, &v)| v)
        .collect();
    let writes: Vec<ValueId> = match inst.kind {
        IdiomKind::Reduction => vec![],
        IdiomKind::Histogram => vec![bind(inst, "bins")?],
        IdiomKind::Stencil1D | IdiomKind::Stencil2D => vec![bind(inst, "write.base_pointer")?],
        IdiomKind::Spmv | IdiomKind::Gemm => vec![bind(inst, "output.base_pointer")?],
    };
    let map = AffineMap::new(f, &an);
    let outer_iv = inst.value(inst.kind.outer_iterator_var());
    let verdict = analysis::check_region_legality(
        f,
        &an,
        &map,
        &inst.blocks,
        &reads,
        &writes,
        outer_iv,
        facts,
    );
    if verdict.kind == VerdictKind::Rejected {
        return Err(XformError::Unsound(format!(
            "legality rejected: {}",
            verdict.evidence.join("; ")
        )));
    }
    let certificate = match outer_iv {
        Some(iv) => analysis::classify_region(f, &an, &map, &inst.blocks, iv, facts),
        None => SafetyCertificate::serial("no outer iterator binding"),
    };
    Ok((verdict, certificate))
}

fn address_root(f: &Function, mut v: ValueId) -> ValueId {
    loop {
        match f.instr(v) {
            Some(i) if i.opcode == Opcode::Gep => v = i.operands[0],
            _ => return v,
        }
    }
}

/// Whether `v` dominates the instruction `site` (constants/arguments
/// always qualify).
fn available_at(f: &Function, an: &Analyses, v: ValueId, site: ValueId) -> bool {
    !f.is_instruction(v) || an.inst_strictly_dominates(v, site)
}

/// Applies the best available replacement of `inst` inside
/// `module.functions[..]` (looked up by `inst.function`). Appends any
/// generated functions to the module. `uid` disambiguates generated names.
pub fn apply_replacement(
    module: &mut Module,
    inst: &IdiomInstance,
    uid: usize,
) -> Result<Replacement> {
    apply_replacement_with(module, inst, uid, None)
}

/// [`apply_replacement`] with module-level call-site alias facts folded
/// into the admission check; the returned [`Replacement`] carries the
/// verdict and refined certificate that admitted it.
pub fn apply_replacement_with(
    module: &mut Module,
    inst: &IdiomInstance,
    uid: usize,
    facts: Option<&ParamAliasFacts>,
) -> Result<Replacement> {
    let fidx = module
        .functions
        .iter()
        .position(|f| f.name == inst.function)
        .ok_or_else(|| XformError::Unsupported("function not in module".into()))?;
    let (verdict, certificate) = {
        let f = &module.functions[fidx];
        check_soundness_with(f, inst, facts)?
    };
    let mut rep = match inst.kind {
        IdiomKind::Gemm => replace_gemm(module, fidx, inst),
        IdiomKind::Spmv => replace_spmv(module, fidx, inst),
        IdiomKind::Reduction => replace_reduction(module, fidx, inst, uid),
        IdiomKind::Histogram => replace_histogram(module, fidx, inst, uid),
        IdiomKind::Stencil1D => replace_stencil1d(module, fidx, inst, uid),
        IdiomKind::Stencil2D => replace_stencil2d(module, fidx, inst, uid),
    }?;
    rep.verdict = verdict;
    rep.certificate = certificate;
    Ok(rep)
}

/// Inserts `call @callee(args...)` immediately before the `precursor`
/// branch, retargets that branch from the loop header to the loop
/// successor block, removes the dead loop blocks and cleans up.
/// If `result_replaces` is given, all uses of that value are rewired to
/// the call's result first.
#[allow(clippy::too_many_arguments)]
fn excise_and_call(
    f: &mut Function,
    inst: &IdiomInstance,
    precursor_var: &str,
    header_iter_var: &str,
    successor_var: &str,
    callee: &str,
    ret_ty: Type,
    args: Vec<ValueId>,
    result_replaces: Option<ValueId>,
) -> Result<()> {
    let an = Analyses::new(f);
    let precursor = bind(inst, precursor_var)?;
    let header_phi = bind(inst, header_iter_var)?;
    let successor = bind(inst, successor_var)?;
    let pre_block = an
        .layout
        .block_of(precursor)
        .ok_or_else(|| XformError::Unsupported("precursor not placed".into()))?;
    let header_block = an
        .layout
        .block_of(header_phi)
        .ok_or_else(|| XformError::Unsupported("iterator not placed".into()))?;
    let exit_block = an
        .layout
        .block_of(successor)
        .ok_or_else(|| XformError::Unsupported("successor not placed".into()))?;
    // All call operands must be available before the precursor.
    for &a in &args {
        if !available_at(f, &an, a, precursor) {
            return Err(XformError::Unsupported(format!(
                "call argument {} is not available at the call site",
                f.display_name(a)
            )));
        }
    }
    let call = f.append_call(pre_block, ret_ty, callee, args);
    // Move the call before the terminator.
    let v = f.block_mut(pre_block).instrs.pop().expect("just appended");
    debug_assert_eq!(v, call);
    let at = f.block(pre_block).instrs.len().saturating_sub(1);
    f.block_mut(pre_block).instrs.insert(at, call);
    if let Some(old) = result_replaces {
        replace_all_uses(f, old, call);
        // The call itself must not consume the replaced value.
        let instr = f.instr_mut(call).expect("call");
        for op in &mut instr.operands {
            debug_assert_ne!(*op, old, "result value used as call argument");
        }
    }
    // Retarget the precursor branch.
    let instr = f.instr_mut(precursor).expect("branch");
    for t in &mut instr.targets {
        if *t == header_block {
            *t = exit_block;
        }
    }
    remove_unreachable_blocks(f);
    eliminate_dead_code(f);
    ssair::verify::verify_function(f).map_err(|es| {
        XformError::Unsound(format!(
            "excision produced invalid IR: {}",
            es.first().map(ToString::to_string).unwrap_or_default()
        ))
    })?;
    Ok(())
}

// ----- library path -----

fn replace_gemm(module: &mut Module, fidx: usize, inst: &IdiomInstance) -> Result<Replacement> {
    let f = &module.functions[fidx];
    // Bounds must start at zero for the fixed-function entry point.
    for lo in [
        "loop[0].iter_begin",
        "loop[1].iter_begin",
        "loop[2].iter_begin",
    ] {
        if const_i64(f, bind(inst, lo)?) != Some(0) {
            return Err(XformError::Unsupported("GEMM loops must start at 0".into()));
        }
    }
    let init = bind(inst, "dot.init")?;
    let beta = if const_f64(f, init) == Some(0.0) {
        0.0
    } else if f.opcode(init) == Some(Opcode::Load) {
        1.0
    } else {
        return Err(XformError::Unsupported(
            "GEMM accumulator init is neither 0 nor C".into(),
        ));
    };
    // The plain form stores the accumulator; the alpha/beta epilogue is
    // detected but not offloaded by this backend.
    if bind(inst, "output.value")? != bind(inst, "dot.acc")? {
        return Err(XformError::Unsupported(
            "GEMM epilogue with alpha/beta scaling is not offloaded".into(),
        ));
    }
    let row_scaled = |mat: &str, row_var: &str| -> Result<i64> {
        Ok(i64::from(
            inst.value(&format!("{mat}.addr.mulidx")) == inst.value(row_var),
        ))
    };
    let ar = row_scaled("input1", "iterator[2]")?;
    let br = row_scaled("input2", "iterator[2]")?;
    let cr = row_scaled("output", "iterator[1]")?;
    let f = &mut module.functions[fidx];
    let (c1, c0) = (f.const_int(Type::I64, 1), f.const_int(Type::I64, 0));
    let _ = (c1, c0);
    let ar = f.const_int(Type::I64, ar);
    let br = f.const_int(Type::I64, br);
    let cr = f.const_int(Type::I64, cr);
    let beta = f.const_float(Type::F64, beta);
    let args = vec![
        bind(inst, "input1.base_pointer")?,
        bind(inst, "input2.base_pointer")?,
        bind(inst, "output.base_pointer")?,
        bind(inst, "loop[0].iter_end")?,
        bind(inst, "loop[1].iter_end")?,
        bind(inst, "loop[2].iter_end")?,
        bind(inst, "input1.addr.stride")?,
        bind(inst, "input2.addr.stride")?,
        bind(inst, "output.addr.stride")?,
        ar,
        br,
        cr,
        beta,
    ];
    excise_and_call(
        &mut module.functions[fidx],
        inst,
        "loop[0].precursor",
        "loop[0].iterator",
        "loop[0].successor",
        "gemm_f64",
        Type::Void,
        args,
        None,
    )?;
    Ok(base_replacement(IdiomKind::Gemm, "gemm_f64".into(), vec![]))
}

fn replace_spmv(module: &mut Module, fidx: usize, inst: &IdiomInstance) -> Result<Replacement> {
    let f = &module.functions[fidx];
    if const_i64(f, bind(inst, "iter_begin")?) != Some(0) {
        return Err(XformError::Unsupported(
            "SPMV outer loop must start at 0".into(),
        ));
    }
    if const_f64(f, bind(inst, "dot.init")?) != Some(0.0) {
        return Err(XformError::Unsupported(
            "SPMV accumulator must start at 0.0".into(),
        ));
    }
    let width = |v: ValueId| -> i64 {
        module.functions[fidx]
            .value(v)
            .ty
            .pointee()
            .map_or(8, |t| t.size_bytes() as i64)
    };
    let rowptr = bind(inst, "ranges.base_pointer")?;
    let colidx = bind(inst, "idx_read.base_pointer")?;
    let (rw, cw) = (width(rowptr), width(colidx));
    let f = &mut module.functions[fidx];
    let rw = f.const_int(Type::I64, rw);
    let cw = f.const_int(Type::I64, cw);
    let args = vec![
        bind(inst, "seq_read.base_pointer")?,
        rowptr,
        colidx,
        bind(inst, "indir_read.base_pointer")?,
        bind(inst, "output.base_pointer")?,
        bind(inst, "iter_end")?,
        rw,
        cw,
    ];
    excise_and_call(
        &mut module.functions[fidx],
        inst,
        "precursor",
        "iterator",
        "successor",
        "csrmv_f64",
        Type::Void,
        args,
        None,
    )?;
    Ok(base_replacement(
        IdiomKind::Spmv,
        "csrmv_f64".into(),
        vec![],
    ))
}

// ----- DSL path: generate device code as IR text, then link it in -----

fn ty_str(t: &Type) -> String {
    format!("{t}")
}

/// Emits the per-read address+load lines for index `%i` of type `ity`
/// with a constant `offset`; returns the value name holding the load.
fn emit_indexed_load(
    text: &mut String,
    r: usize,
    base: &str,
    elem: &Type,
    ity: &Type,
    offset: i64,
) -> String {
    let mut idx = "%i".to_owned();
    if offset != 0 {
        let _ = std::fmt::Write::write_fmt(
            text,
            format_args!("  %off{r} = add {ity} {idx}, {offset}\n"),
        );
        idx = format!("%off{r}");
    }
    let wide = if *ity == Type::I32 {
        let _ =
            std::fmt::Write::write_fmt(text, format_args!("  %iw{r} = sext {ity} {idx} to i64\n"));
        format!("%iw{r}")
    } else {
        idx
    };
    let e = ty_str(elem);
    let _ = std::fmt::Write::write_fmt(
        text,
        format_args!(
            "  %a{r} = getelementptr {e}, {e}* {base}, i64 {wide}\n  %v{r} = load {e}, {e}* %a{r}\n"
        ),
    );
    format!("%v{r}")
}

fn check_step_and_cmp(f: &Function, inst: &IdiomInstance, prefix: &str) -> Result<()> {
    let step = bind(inst, &format!("{prefix}step"))?;
    if const_i64(f, step) != Some(1) {
        return Err(XformError::Unsupported(
            "only unit-stride loops are offloaded".into(),
        ));
    }
    let cmp = bind(inst, &format!("{prefix}comparison"))?;
    match f.opcode(cmp) {
        Some(Opcode::ICmp(ICmpPred::Slt)) => Ok(()),
        _ => Err(XformError::Unsupported(
            "only `<` loop bounds are offloaded".into(),
        )),
    }
}

fn parse_and_push(module: &mut Module, text: &str) -> Result<String> {
    let func = ssair::parser::parse_function_text(text).map_err(|e| {
        XformError::Unsupported(format!(
            "generated device code failed to parse: {e}\n{text}"
        ))
    })?;
    ssair::verify::verify_function(&func).map_err(|es| {
        XformError::Unsupported(format!(
            "generated device code failed to verify: {}",
            es.first().map(ToString::to_string).unwrap_or_default()
        ))
    })?;
    let name = func.name.clone();
    module.add_function(func);
    Ok(name)
}

fn replace_reduction(
    module: &mut Module,
    fidx: usize,
    inst: &IdiomInstance,
    uid: usize,
) -> Result<Replacement> {
    let f = &module.functions[fidx];
    check_step_and_cmp(f, inst, "")?;
    let acc = bind(inst, "acc")?;
    let update = bind(inst, "update")?;
    let reads = inst.family("read_value");
    let mut kernel_inputs: Vec<ValueId> = reads.clone();
    kernel_inputs.push(acc);
    let kname = format!("red_kernel_{uid}");
    let outlined = outline_kernel(f, update, &kernel_inputs, &kname)
        .ok_or_else(|| XformError::Unsupported("reduction kernel is not pure".into()))?;
    let extras: Vec<ValueId> = outlined.inputs[kernel_inputs.len()..].to_vec();

    // Collect read base pointers and element types.
    let mut bases: Vec<(ValueId, Type)> = Vec::new();
    for (r, &rv) in reads.iter().enumerate() {
        let base = bind(inst, &format!("read[{r}].base_pointer"))?;
        bases.push((base, f.value(rv).ty.clone()));
    }
    let ity = f.value(bind(inst, "iterator")?).ty.clone();
    let aty = f.value(acc).ty.clone();

    // Generate the device program (the "Lift output").
    let devname = format!("lift_red_{uid}");
    let mut params: Vec<String> = bases
        .iter()
        .enumerate()
        .map(|(r, (_, e))| format!("{}* %b{r}", ty_str(e)))
        .collect();
    params.push(format!("{} %begin", ty_str(&ity)));
    params.push(format!("{} %end", ty_str(&ity)));
    params.push(format!("{} %init", ty_str(&aty)));
    for (k, &e) in extras.iter().enumerate() {
        params.push(format!("{} %x{k}", ty_str(&f.value(e).ty)));
    }
    let mut body = String::new();
    let mut kargs: Vec<String> = Vec::new();
    for (r, (_, e)) in bases.iter().enumerate() {
        let v = emit_indexed_load(&mut body, r, &format!("%b{r}"), e, &ity, 0);
        kargs.push(format!("{} {v}", ty_str(e)));
    }
    kargs.push(format!("{} %acc", ty_str(&aty)));
    for (k, &e) in extras.iter().enumerate() {
        kargs.push(format!("{} %x{k}", ty_str(&f.value(e).ty)));
    }
    let ity_s = ty_str(&ity);
    let aty_s = ty_str(&aty);
    let text = format!(
        "define {aty_s} @{devname}({}) {{\nentry:\n  br label %header\nheader:\n  %i = phi {ity_s} [ %begin, %entry ], [ %inext, %latch ]\n  %acc = phi {aty_s} [ %init, %entry ], [ %nacc, %latch ]\n  %c = icmp slt {ity_s} %i, %end\n  br i1 %c, label %latch, label %exit\nlatch:\n{body}  %nacc = call {aty_s} @{kname}({})\n  %inext = add {ity_s} %i, 1\n  br label %header\nexit:\n  ret {aty_s} %acc\n}}\n",
        params.join(", "),
        kargs.join(", ")
    );
    module.add_function(outlined.function);
    let devgen = parse_and_push(module, &text)?;

    let mut args: Vec<ValueId> = bases.iter().map(|(b, _)| *b).collect();
    args.push(bind(inst, "iter_begin")?);
    args.push(bind(inst, "iter_end")?);
    args.push(bind(inst, "init")?);
    args.extend(extras);
    excise_and_call(
        &mut module.functions[fidx],
        inst,
        "precursor",
        "iterator",
        "successor",
        &devgen,
        aty,
        args,
        Some(acc),
    )?;
    Ok(base_replacement(
        IdiomKind::Reduction,
        devgen.clone(),
        vec![kname, devgen],
    ))
}

fn replace_histogram(
    module: &mut Module,
    fidx: usize,
    inst: &IdiomInstance,
    uid: usize,
) -> Result<Replacement> {
    let f = &module.functions[fidx];
    check_step_and_cmp(f, inst, "")?;
    // The update must run every iteration (conditional histograms would
    // need a guarded device kernel; see DESIGN.md).
    let an = Analyses::new(f);
    let store = bind(inst, "store")?;
    let latch_term = bind(inst, "backedge")?;
    let sb = an.layout.block_of(store).unwrap();
    let lb = an.layout.block_of(latch_term).unwrap();
    if !an.dom.dominates(sb, lb) {
        return Err(XformError::Unsupported(
            "conditional histogram update".into(),
        ));
    }
    let reads = inst.family("read_value");
    let old = bind(inst, "old_value")?;
    let new_value = bind(inst, "new_value")?;
    let bin_idx = bind(inst, "bin_idx")?;
    let mut val_inputs: Vec<ValueId> = reads.clone();
    val_inputs.push(old);
    let vk_name = format!("histo_val_kernel_{uid}");
    let vk = outline_kernel(f, new_value, &val_inputs, &vk_name)
        .ok_or_else(|| XformError::Unsupported("histogram value kernel is not pure".into()))?;
    let ik_name = format!("histo_idx_kernel_{uid}");
    let ik = outline_kernel(f, bin_idx, &reads, &ik_name)
        .ok_or_else(|| XformError::Unsupported("histogram index kernel is not pure".into()))?;
    let v_extras: Vec<ValueId> = vk.inputs[val_inputs.len()..].to_vec();
    let i_extras: Vec<ValueId> = ik.inputs[reads.len()..].to_vec();

    let mut bases: Vec<(ValueId, Type)> = Vec::new();
    for (r, &rv) in reads.iter().enumerate() {
        bases.push((
            bind(inst, &format!("read[{r}].base_pointer"))?,
            f.value(rv).ty.clone(),
        ));
    }
    let bins = bind(inst, "bins")?;
    let bty = f.value(old).ty.clone();
    let ity = f.value(bind(inst, "iterator")?).ty.clone();
    let xty = f.value(bin_idx).ty.clone();

    let devname = format!("lift_histo_{uid}");
    let mut params: Vec<String> = vec![format!("{}* %bins", ty_str(&bty))];
    for (r, (_, e)) in bases.iter().enumerate() {
        params.push(format!("{}* %b{r}", ty_str(e)));
    }
    params.push(format!("{} %begin", ty_str(&ity)));
    params.push(format!("{} %end", ty_str(&ity)));
    for (k, &e) in i_extras.iter().enumerate() {
        params.push(format!("{} %ix{k}", ty_str(&f.value(e).ty)));
    }
    for (k, &e) in v_extras.iter().enumerate() {
        params.push(format!("{} %vx{k}", ty_str(&f.value(e).ty)));
    }
    let mut body = String::new();
    let mut read_args: Vec<String> = Vec::new();
    for (r, (_, e)) in bases.iter().enumerate() {
        let v = emit_indexed_load(&mut body, r, &format!("%b{r}"), e, &ity, 0);
        read_args.push(format!("{} {v}", ty_str(e)));
    }
    let mut ikargs = read_args.clone();
    for (k, &e) in i_extras.iter().enumerate() {
        ikargs.push(format!("{} %ix{k}", ty_str(&f.value(e).ty)));
    }
    let xty_s = ty_str(&xty);
    let bty_s = ty_str(&bty);
    let ity_s = ty_str(&ity);
    let idx_wide = if xty == Type::I32 {
        "  %xw = sext i32 %xidx to i64\n"
    } else {
        ""
    };
    let xw = if xty == Type::I32 { "%xw" } else { "%xidx" };
    let mut vkargs = read_args;
    vkargs.push(format!("{bty_s} %old"));
    for (k, &e) in v_extras.iter().enumerate() {
        vkargs.push(format!("{} %vx{k}", ty_str(&f.value(e).ty)));
    }
    let text = format!(
        "define void @{devname}({}) {{\nentry:\n  br label %header\nheader:\n  %i = phi {ity_s} [ %begin, %entry ], [ %inext, %latch ]\n  %c = icmp slt {ity_s} %i, %end\n  br i1 %c, label %latch, label %exit\nlatch:\n{body}  %xidx = call {xty_s} @{ik_name}({})\n{idx_wide}  %ba = getelementptr {bty_s}, {bty_s}* %bins, i64 {xw}\n  %old = load {bty_s}, {bty_s}* %ba\n  %new = call {bty_s} @{vk_name}({})\n  store {bty_s} %new, {bty_s}* %ba\n  %inext = add {ity_s} %i, 1\n  br label %header\nexit:\n  ret void\n}}\n",
        params.join(", "),
        ikargs.join(", "),
        vkargs.join(", ")
    );
    module.add_function(vk.function);
    module.add_function(ik.function);
    let devgen = parse_and_push(module, &text)?;

    let mut args: Vec<ValueId> = vec![bins];
    args.extend(bases.iter().map(|(b, _)| *b));
    args.push(bind(inst, "iter_begin")?);
    args.push(bind(inst, "iter_end")?);
    args.extend(i_extras);
    args.extend(v_extras);
    excise_and_call(
        &mut module.functions[fidx],
        inst,
        "precursor",
        "iterator",
        "successor",
        &devgen,
        Type::Void,
        args,
        None,
    )?;
    Ok(base_replacement(
        IdiomKind::Histogram,
        devgen.clone(),
        vec![vk_name, ik_name, devgen],
    ))
}

/// Constant offset of `idx` relative to `center` (`i`, `i±c`), or `None`.
fn offset_from(f: &Function, idx: ValueId, center: ValueId) -> Option<i64> {
    // See through one sign extension.
    let idx = match f.instr(idx) {
        Some(i) if i.opcode == Opcode::SExt => i.operands[0],
        _ => idx,
    };
    if idx == center {
        return Some(0);
    }
    let i = f.instr(idx)?;
    match i.opcode {
        Opcode::Add => {
            if i.operands[0] == center {
                const_i64(f, i.operands[1])
            } else if i.operands[1] == center {
                const_i64(f, i.operands[0])
            } else {
                None
            }
        }
        Opcode::Sub if i.operands[0] == center => const_i64(f, i.operands[1]).map(|c| -c),
        _ => None,
    }
}

fn replace_stencil1d(
    module: &mut Module,
    fidx: usize,
    inst: &IdiomInstance,
    uid: usize,
) -> Result<Replacement> {
    let f = &module.functions[fidx];
    check_step_and_cmp(f, inst, "")?;
    let reads = inst.family("read_value");
    let center = bind(inst, "iterator")?;
    let write_value = bind(inst, "write.value")?;
    let kname = format!("halide_kernel_{uid}");
    let outlined = outline_kernel(f, write_value, &reads, &kname)
        .ok_or_else(|| XformError::Unsupported("stencil kernel is not pure".into()))?;
    let extras: Vec<ValueId> = outlined.inputs[reads.len()..].to_vec();
    let mut bases: Vec<(ValueId, Type, i64)> = Vec::new();
    for (r, &rv) in reads.iter().enumerate() {
        let base = bind(inst, &format!("read[{r}].base_pointer"))?;
        let gep_idx = bind(inst, &format!("read[{r}].gep_idx"))?;
        let off = offset_from(f, gep_idx, center).ok_or_else(|| {
            XformError::Unsupported("stencil read offset is not a constant".into())
        })?;
        bases.push((base, f.value(rv).ty.clone(), off));
    }
    let out_base = bind(inst, "write.base_pointer")?;
    let oty = f.value(write_value).ty.clone();
    let ity = f.value(center).ty.clone();

    let devname = format!("halide_st1_{uid}");
    let mut params: Vec<String> = vec![format!("{}* %out", ty_str(&oty))];
    for (r, (_, e, _)) in bases.iter().enumerate() {
        params.push(format!("{}* %b{r}", ty_str(e)));
    }
    params.push(format!("{} %begin", ty_str(&ity)));
    params.push(format!("{} %end", ty_str(&ity)));
    for (k, &e) in extras.iter().enumerate() {
        params.push(format!("{} %x{k}", ty_str(&f.value(e).ty)));
    }
    let mut body = String::new();
    let mut kargs: Vec<String> = Vec::new();
    for (r, (_, e, off)) in bases.iter().enumerate() {
        let v = emit_indexed_load(&mut body, r, &format!("%b{r}"), e, &ity, *off);
        kargs.push(format!("{} {v}", ty_str(e)));
    }
    for (k, &e) in extras.iter().enumerate() {
        kargs.push(format!("{} %x{k}", ty_str(&f.value(e).ty)));
    }
    let ity_s = ty_str(&ity);
    let oty_s = ty_str(&oty);
    let wide = if ity == Type::I32 {
        "  %ow = sext i32 %i to i64\n"
    } else {
        ""
    };
    let ow = if ity == Type::I32 { "%ow" } else { "%i" };
    let text = format!(
        "define void @{devname}({}) {{\nentry:\n  br label %header\nheader:\n  %i = phi {ity_s} [ %begin, %entry ], [ %inext, %latch ]\n  %c = icmp slt {ity_s} %i, %end\n  br i1 %c, label %latch, label %exit\nlatch:\n{body}  %res = call {oty_s} @{kname}({})\n{wide}  %oa = getelementptr {oty_s}, {oty_s}* %out, i64 {ow}\n  store {oty_s} %res, {oty_s}* %oa\n  %inext = add {ity_s} %i, 1\n  br label %header\nexit:\n  ret void\n}}\n",
        params.join(", "),
        kargs.join(", ")
    );
    module.add_function(outlined.function);
    let devgen = parse_and_push(module, &text)?;
    let mut args: Vec<ValueId> = vec![out_base];
    args.extend(bases.iter().map(|(b, _, _)| *b));
    args.push(bind(inst, "iter_begin")?);
    args.push(bind(inst, "iter_end")?);
    args.extend(extras);
    excise_and_call(
        &mut module.functions[fidx],
        inst,
        "precursor",
        "iterator",
        "successor",
        &devgen,
        Type::Void,
        args,
        None,
    )?;
    Ok(base_replacement(
        IdiomKind::Stencil1D,
        devgen.clone(),
        vec![kname, devgen],
    ))
}

fn replace_stencil2d(
    module: &mut Module,
    fidx: usize,
    inst: &IdiomInstance,
    uid: usize,
) -> Result<Replacement> {
    let f = &module.functions[fidx];
    check_step_and_cmp(f, inst, "loop[0].")?;
    check_step_and_cmp(f, inst, "loop[1].")?;
    let reads = inst.family("read_value");
    let row_iter = bind(inst, "loop[0].iterator")?;
    let col_iter = bind(inst, "loop[1].iterator")?;
    let write_value = bind(inst, "write.value")?;
    let kname = format!("halide_kernel_{uid}");
    let outlined = outline_kernel(f, write_value, &reads, &kname)
        .ok_or_else(|| XformError::Unsupported("stencil kernel is not pure".into()))?;
    let extras: Vec<ValueId> = outlined.inputs[reads.len()..].to_vec();

    // Write side must be row-major (row in the scaled position).
    if inst.value("write.addr.mulidx") != Some(row_iter) {
        return Err(XformError::Unsupported("transposed stencil output".into()));
    }
    let out_stride = bind(inst, "write.addr.stride")?;
    struct Read2 {
        base: ValueId,
        elem: Type,
        roff: i64,
        coff: i64,
        stride: ValueId,
    }
    let mut rs: Vec<Read2> = Vec::new();
    for (r, &rv) in reads.iter().enumerate() {
        let rowexpr = bind(inst, &format!("read[{r}].rowexpr"))?;
        let colexpr = bind(inst, &format!("read[{r}].colexpr"))?;
        let roff = offset_from(f, rowexpr, row_iter)
            .ok_or_else(|| XformError::Unsupported("stencil row offset is not constant".into()))?;
        let coff = offset_from(f, colexpr, col_iter).ok_or_else(|| {
            XformError::Unsupported("stencil column offset is not constant".into())
        })?;
        rs.push(Read2 {
            base: bind(inst, &format!("read[{r}].base_pointer"))?,
            elem: f.value(rv).ty.clone(),
            roff,
            coff,
            stride: bind(inst, &format!("read[{r}].stride"))?,
        });
    }
    let out_base = bind(inst, "write.base_pointer")?;
    let oty = f.value(write_value).ty.clone();
    let ity = f.value(row_iter).ty.clone();
    if f.value(col_iter).ty != ity {
        return Err(XformError::Unsupported(
            "mixed-width stencil iterators".into(),
        ));
    }

    let devname = format!("halide_st2_{uid}");
    let ity_s = ty_str(&ity);
    let oty_s = ty_str(&oty);
    let mut params: Vec<String> = vec![format!("{oty_s}* %out"), format!("{ity_s} %sw")];
    for (r, rd) in rs.iter().enumerate() {
        params.push(format!("{}* %b{r}", ty_str(&rd.elem)));
        params.push(format!("{ity_s} %s{r}"));
    }
    params.push(format!("{ity_s} %b0r"));
    params.push(format!("{ity_s} %e0r"));
    params.push(format!("{ity_s} %b1c"));
    params.push(format!("{ity_s} %e1c"));
    for (k, &e) in extras.iter().enumerate() {
        params.push(format!("{} %x{k}", ty_str(&f.value(e).ty)));
    }
    let mut body = String::new();
    let mut kargs: Vec<String> = Vec::new();
    use std::fmt::Write as _;
    for (r, rd) in rs.iter().enumerate() {
        let rexp = if rd.roff != 0 {
            let _ = writeln!(body, "  %ro{r} = add {ity_s} %i, {}", rd.roff);
            format!("%ro{r}")
        } else {
            "%i".to_owned()
        };
        let cexp = if rd.coff != 0 {
            let _ = writeln!(body, "  %co{r} = add {ity_s} %j, {}", rd.coff);
            format!("%co{r}")
        } else {
            "%j".to_owned()
        };
        let _ = writeln!(body, "  %m{r} = mul {ity_s} {rexp}, %s{r}");
        let _ = writeln!(body, "  %f{r} = add {ity_s} %m{r}, {cexp}");
        let wide = if ity == Type::I32 {
            let _ = writeln!(body, "  %fw{r} = sext i32 %f{r} to i64");
            format!("%fw{r}")
        } else {
            format!("%f{r}")
        };
        let e = ty_str(&rd.elem);
        let _ = writeln!(body, "  %a{r} = getelementptr {e}, {e}* %b{r}, i64 {wide}");
        let _ = writeln!(body, "  %v{r} = load {e}, {e}* %a{r}");
        kargs.push(format!("{e} %v{r}"));
    }
    for (k, &e) in extras.iter().enumerate() {
        kargs.push(format!("{} %x{k}", ty_str(&f.value(e).ty)));
    }
    let widen_out = if ity == Type::I32 {
        "  %fow = sext i32 %fo to i64\n"
    } else {
        ""
    };
    let fow = if ity == Type::I32 { "%fow" } else { "%fo" };
    let text = format!(
        "define void @{devname}({}) {{\nentry:\n  br label %h0\nh0:\n  %i = phi {ity_s} [ %b0r, %entry ], [ %inext, %l0 ]\n  %c0 = icmp slt {ity_s} %i, %e0r\n  br i1 %c0, label %pre1, label %x0\npre1:\n  br label %h1\nh1:\n  %j = phi {ity_s} [ %b1c, %pre1 ], [ %jnext, %l1 ]\n  %c1 = icmp slt {ity_s} %j, %e1c\n  br i1 %c1, label %l1, label %x1\nl1:\n{body}  %res = call {oty_s} @{kname}({})\n  %mo = mul {ity_s} %i, %sw\n  %fo = add {ity_s} %mo, %j\n{widen_out}  %oa = getelementptr {oty_s}, {oty_s}* %out, i64 {fow}\n  store {oty_s} %res, {oty_s}* %oa\n  %jnext = add {ity_s} %j, 1\n  br label %h1\nx1:\n  br label %l0\nl0:\n  %inext = add {ity_s} %i, 1\n  br label %h0\nx0:\n  ret void\n}}\n",
        params.join(", "),
        kargs.join(", ")
    );
    module.add_function(outlined.function);
    let devgen = parse_and_push(module, &text)?;
    let mut args: Vec<ValueId> = vec![out_base, out_stride];
    for rd in &rs {
        args.push(rd.base);
        args.push(rd.stride);
    }
    args.push(bind(inst, "loop[0].iter_begin")?);
    args.push(bind(inst, "loop[0].iter_end")?);
    args.push(bind(inst, "loop[1].iter_begin")?);
    args.push(bind(inst, "loop[1].iter_end")?);
    args.extend(extras);
    excise_and_call(
        &mut module.functions[fidx],
        inst,
        "loop[0].precursor",
        "loop[0].iterator",
        "loop[0].successor",
        &devgen,
        Type::Void,
        args,
        None,
    )?;
    Ok(base_replacement(
        IdiomKind::Stencil2D,
        devgen.clone(),
        vec![kname, devgen],
    ))
}
