//! End-to-end replacement validation: compile C → detect → replace →
//! execute original and transformed programs and compare results. This is
//! the §6 pipeline with the §6.3 soundness checks on the rejection paths.

use idioms::{detect, IdiomKind};
use interp::{Machine, Value};
use ssair::Module;
use std::sync::Arc;

fn compile(src: &str) -> Module {
    minicc::compile(src, "t").expect("compiles")
}

/// Register the fixed-function "vendor library" entry points the library
/// path calls (these mirror the hetero crate's executors).
fn register_hosts(vm: &mut Machine) {
    vm.register_host(
        "gemm_f64",
        Arc::new(|mem, args| {
            let (a, b, c) = (args[0].as_p(), args[1].as_p(), args[2].as_p());
            let (m, n, k) = (args[3].as_i(), args[4].as_i(), args[5].as_i());
            let (sa, sb, sc) = (args[6].as_i(), args[7].as_i(), args[8].as_i());
            let (ar, br, cr) = (args[9].as_i(), args[10].as_i(), args[11].as_i());
            let beta = args[12].as_f();
            let addr = |base: u64, col: i64, row: i64, stride: i64, row_scaled: i64| {
                let idx = if row_scaled != 0 {
                    row * stride + col
                } else {
                    col * stride + row
                };
                base + 8 * idx as u64
            };
            for i0 in 0..m {
                for i1 in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        let av = mem.load_f64(addr(a, i0, kk, sa, ar))?;
                        let bv = mem.load_f64(addr(b, i1, kk, sb, br))?;
                        acc += av * bv;
                    }
                    let ca = addr(c, i0, i1, sc, cr);
                    let old = if beta != 0.0 {
                        mem.load_f64(ca)? * beta
                    } else {
                        0.0
                    };
                    mem.store_f64(ca, acc + old)?;
                }
            }
            Ok(Value::I(0))
        }),
    );
    vm.register_host(
        "csrmv_f64",
        Arc::new(|mem, args| {
            let (vals, rowptr, colidx, x, y) = (
                args[0].as_p(),
                args[1].as_p(),
                args[2].as_p(),
                args[3].as_p(),
                args[4].as_p(),
            );
            let m = args[5].as_i();
            let (rw, cw) = (args[6].as_i(), args[7].as_i());
            let load_idx = |mem: &interp::Memory, base: u64, k: i64, w: i64| {
                if w == 4 {
                    mem.load_i32(base + 4 * k as u64)
                } else {
                    mem.load_i64(base + 8 * k as u64)
                }
            };
            for j in 0..m {
                let lo = load_idx(mem, rowptr, j, rw)?;
                let hi = load_idx(mem, rowptr, j + 1, rw)?;
                let mut d = 0.0;
                for k in lo..hi {
                    let col = load_idx(mem, colidx, k, cw)?;
                    d += mem.load_f64(vals + 8 * k as u64)? * mem.load_f64(x + 8 * col as u64)?;
                }
                mem.store_f64(y + 8 * j as u64, d)?;
            }
            Ok(Value::I(0))
        }),
    );
}

#[test]
fn reduction_replacement_preserves_results() {
    let src = "double dot(double* x, double* y, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s += x[i] * y[i];
        return s;
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("dot").unwrap());
    let red = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Reduction)
        .expect("found");
    let rep = xform::apply_replacement(&mut transformed, red, 0).expect("replaced");
    assert!(rep.callee.starts_with("lift_red_"));
    assert!(
        transformed.function(&rep.callee).is_some(),
        "device code linked in"
    );

    let xs: Vec<f64> = (0..37).map(|i| 0.5 + i as f64).collect();
    let ys: Vec<f64> = (0..37).map(|i| 2.0 - 0.25 * i as f64).collect();
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        let xp = vm.mem.alloc_f64_slice(&xs);
        let yp = vm.mem.alloc_f64_slice(&ys);
        vm.run("dot", &[Value::P(xp), Value::P(yp), Value::I(37)])
            .unwrap()
            .as_f()
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn max_reduction_with_intrinsics_round_trips() {
    let src = "double norm(double* x, int n) {
        double m = 0.0;
        for (int i = 0; i < n; i++) m = fmax(m, fabs(x[i]));
        return m;
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("norm").unwrap());
    let red = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Reduction)
        .expect("found");
    xform::apply_replacement(&mut transformed, red, 1).expect("replaced");
    let xs: Vec<f64> = (0..29).map(|i| ((i * 37) % 13) as f64 - 6.0).collect();
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        let xp = vm.mem.alloc_f64_slice(&xs);
        vm.run("norm", &[Value::P(xp), Value::I(29)])
            .unwrap()
            .as_f()
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn histogram_replacement_preserves_bins() {
    let src = "void histo(int* img, int* bins, int n) {
        for (int i = 0; i < n; i++) bins[img[i]] = bins[img[i]] + 1;
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("histo").unwrap());
    let h = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Histogram)
        .expect("found");
    xform::apply_replacement(&mut transformed, h, 2).expect("replaced");
    let img: Vec<i32> = (0..101).map(|i| (i * 7) % 16).collect();
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        let ip = vm.mem.alloc_i32_slice(&img);
        let bp = vm.mem.alloc_i32_slice(&[0; 16]);
        vm.run("histo", &[Value::P(ip), Value::P(bp), Value::I(101)])
            .unwrap();
        vm.mem.read_i32_slice(bp, 16)
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn stencil1d_replacement_preserves_output() {
    let src = "void blur(double* out, double* in_, int n) {
        for (int i = 1; i < n - 1; i++)
            out[i] = 0.25*in_[i-1] + 0.5*in_[i] + 0.25*in_[i+1];
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("blur").unwrap());
    let st = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Stencil1D)
        .expect("found");
    xform::apply_replacement(&mut transformed, st, 3).expect("replaced");
    let input: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        let op = vm.mem.alloc_f64_slice(&vec![0.0; 50]);
        let ip = vm.mem.alloc_f64_slice(&input);
        vm.run("blur", &[Value::P(op), Value::P(ip), Value::I(50)])
            .unwrap();
        vm.mem.read_f64_slice(op, 50)
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn stencil2d_replacement_preserves_output() {
    let src = "void jacobi(double* out, double* in_, int n) {
        for (int i = 1; i < n - 1; i++)
            for (int j = 1; j < n - 1; j++)
                out[i*n+j] = 0.2 * (in_[i*n+j] + in_[(i-1)*n+j] + in_[(i+1)*n+j]
                                    + in_[i*n+(j-1)] + in_[i*n+(j+1)]);
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("jacobi").unwrap());
    let st = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Stencil2D)
        .expect("found");
    xform::apply_replacement(&mut transformed, st, 4).expect("replaced");
    let n = 12;
    let input: Vec<f64> = (0..n * n).map(|i| ((i * 31) % 17) as f64 * 0.5).collect();
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        let op = vm.mem.alloc_f64_slice(&vec![0.0; n * n]);
        let ip = vm.mem.alloc_f64_slice(&input);
        vm.run("jacobi", &[Value::P(op), Value::P(ip), Value::I(n as i64)])
            .unwrap();
        vm.mem.read_f64_slice(op, n * n)
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn gemm_replacement_calls_the_library() {
    let src = "void mm(double* M1, double* M2, double* M3, int n) {
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
                M3[i*n+j] = 0.0;
                for (int k = 0; k < n; k++)
                    M3[i*n+j] += M1[i*n+k] * M2[k*n+j];
            }
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("mm").unwrap());
    let g = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Gemm)
        .expect("found");
    let rep = xform::apply_replacement(&mut transformed, g, 5).expect("replaced");
    assert_eq!(rep.callee, "gemm_f64");
    let n = 9;
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 13) % 7) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 5) % 11) as f64 - 3.0).collect();
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        register_hosts(&mut vm);
        let ap = vm.mem.alloc_f64_slice(&a);
        let bp = vm.mem.alloc_f64_slice(&b);
        let cp = vm.mem.alloc_f64_slice(&vec![0.0; n * n]);
        vm.run(
            "mm",
            &[Value::P(ap), Value::P(bp), Value::P(cp), Value::I(n as i64)],
        )
        .unwrap();
        vm.mem.read_f64_slice(cp, n * n)
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn spmv_replacement_calls_the_library() {
    let src = "void spmv(double* a, int* rowstr, int* colidx, double* z, double* r, int m) {
        for (int j = 0; j < m; j++) {
            double d = 0.0;
            for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                d = d + a[k] * z[colidx[k]];
            r[j] = d;
        }
    }";
    let original = compile(src);
    let mut transformed = original.clone();
    let insts = detect(original.function("spmv").unwrap());
    let s = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Spmv)
        .expect("found");
    let rep = xform::apply_replacement(&mut transformed, s, 6).expect("replaced");
    assert_eq!(rep.callee, "csrmv_f64");
    // A small CSR matrix: 4 rows.
    let rowstr: Vec<i32> = vec![0, 2, 4, 5, 7];
    let colidx: Vec<i32> = vec![0, 1, 1, 2, 3, 0, 3];
    let vals: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
    let z: Vec<f64> = vec![1.5, -2.0, 0.5, 3.0];
    let run = |m: &Module| {
        let mut vm = Machine::new(m);
        register_hosts(&mut vm);
        let ap = vm.mem.alloc_f64_slice(&vals);
        let rp = vm.mem.alloc_i32_slice(&rowstr);
        let cp = vm.mem.alloc_i32_slice(&colidx);
        let zp = vm.mem.alloc_f64_slice(&z);
        let yp = vm.mem.alloc_f64_slice(&[0.0; 4]);
        vm.run(
            "spmv",
            &[
                Value::P(ap),
                Value::P(rp),
                Value::P(cp),
                Value::P(zp),
                Value::P(yp),
                Value::I(4),
            ],
        )
        .unwrap();
        vm.mem.read_f64_slice(yp, 4)
    };
    assert_eq!(run(&original), run(&transformed));
}

#[test]
fn certificates_map_covers_committed_callees() {
    let src = "void mm(double* M1, double* M2, double* M3, int n) {
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
                M3[i*n+j] = 0.0;
                for (int k = 0; k < n; k++)
                    M3[i*n+j] += M1[i*n+k] * M2[k*n+j];
            }
    }
    double dot(double* x, double* y, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s += x[i] * y[i];
        return s;
    }";
    let m = compile(src);
    let xf = xform::transform_module(&m);
    let certs = xf.certificates();
    // One certificate per introduced callee, none of them serial (the
    // parallel executor registry is keyed off this map).
    assert_eq!(certs.len(), xf.replaced());
    assert!(certs.contains_key("gemm_f64"));
    assert!(certs.keys().any(|c| c.starts_with("lift_red_")));
    for (callee, safety) in &certs {
        assert_ne!(
            *safety,
            idioms::ParallelSafety::Serial,
            "{callee} unexpectedly serial"
        );
    }
}

#[test]
fn unsound_regions_are_rejected() {
    // The loop logs partial sums: an extra store the reduction replacement
    // would lose. Detection may fire, replacement must refuse.
    let src = "double weird(double* x, double* log_, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) { s += x[i]; log_[i] = s; }
        return s;
    }";
    let m = compile(src);
    let insts = detect(m.function("weird").unwrap());
    for inst in insts.iter().filter(|i| i.kind == IdiomKind::Reduction) {
        let mut t = m.clone();
        let err = xform::apply_replacement(&mut t, inst, 9).unwrap_err();
        assert!(matches!(err, xform::XformError::Unsound(_)), "got {err:?}");
    }
}

#[test]
fn conditional_histogram_is_not_offloaded() {
    let src = "void chisto(int* img, int* bins, int n) {
        for (int i = 0; i < n; i++) {
            if (img[i] > 0) { bins[img[i]] = bins[img[i]] + 1; }
        }
    }";
    let m = compile(src);
    let insts = detect(m.function("chisto").unwrap());
    for inst in insts.iter().filter(|i| i.kind == IdiomKind::Histogram) {
        let mut t = m.clone();
        assert!(xform::apply_replacement(&mut t, inst, 10).is_err());
    }
}

#[test]
fn alpha_beta_gemm_is_detected_but_not_offloaded() {
    // The Figure-8 first form with the full alpha/beta epilogue: the
    // library backend's calling convention does not cover it, so the
    // rewrite refuses with Unsupported while detection stands.
    let src = "void g(double* A, double* B, double* C, int m, int n, int k,
                      double alpha, double beta) {
        for (int mm = 0; mm < m; mm++)
            for (int nn = 0; nn < n; nn++) {
                double c = 0.0;
                for (int i = 0; i < k; i++) c += A[mm + i*m] * B[nn + i*n];
                C[mm + nn*m] = C[mm + nn*m] * beta + alpha * c;
            }
    }";
    let m = compile(src);
    let insts = detect(m.function("g").unwrap());
    let g = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Gemm)
        .expect("detected");
    let mut t = m.clone();
    let err = xform::apply_replacement(&mut t, g, 20).unwrap_err();
    assert!(
        matches!(err, xform::XformError::Unsupported(_)),
        "got {err:?}"
    );
}

#[test]
fn strided_reduction_is_detected_but_not_offloaded() {
    let src = "double s(double* x, int n) {
        double a = 0.0;
        for (int i = 0; i < n; i += 3) a += x[i];
        return a;
    }";
    let m = compile(src);
    let insts = detect(m.function("s").unwrap());
    let r = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Reduction)
        .expect("detected");
    let mut t = m.clone();
    let err = xform::apply_replacement(&mut t, r, 21).unwrap_err();
    assert!(matches!(err, xform::XformError::Unsupported(_)));
}

#[test]
fn generated_device_code_always_verifies() {
    // Each DSL-path replacement links generated IR; the generator refuses
    // rather than linking unverifiable code. Spot-check across kinds.
    let cases = [
        ("double s(double* x, double* y, int n) { double a = 1.0; for (int i = 0; i < n; i++) a = a * (x[i] + y[i]); return a; }", "s", IdiomKind::Reduction),
        ("void h(int* k, int* b, int n) { for (int i = 0; i < n; i++) b[k[i]] = b[k[i]] + k[i]; }", "h", IdiomKind::Histogram),
    ];
    for (src, fname, kind) in cases {
        let m = compile(src);
        let insts = detect(m.function(fname).unwrap());
        let inst = insts.iter().find(|i| i.kind == kind).expect("detected");
        let mut t = m.clone();
        let rep = xform::apply_replacement(&mut t, inst, 22).expect("replaced");
        for g in &rep.generated {
            let f = t.function(g).expect("linked");
            ssair::verify::verify_function(f).expect("generated code verifies");
        }
    }
}
