//! # idiomatch-core — the end-to-end pipeline (paper Figure 1)
//!
//! Ties the workspace together into the workflow of the paper's Figure 1:
//! C source → optimized SSA IR (`minicc`) → constraint-based idiom
//! detection (`idl` + `solver` + `idioms`) → API selection (`hetero`) →
//! code replacement (`xform`) → linked, executable program (`interp`).
//!
//! [`analyze`] runs detection, profiling and modeling for one benchmark
//! and returns everything the evaluation harness (crates/bench) needs to
//! regenerate the paper's tables and figures;
//! [`transform_and_validate_module`] performs *every* detected
//! replacement ([`xform::transform_module`]) and checks the transformed
//! program against the original by seeded differential execution
//! ([`validate_transform`]: element-wise bitwise comparison of every
//! program array plus the entry return value).
//! [`transform_and_validate`] is the single-instance convenience used by
//! the walkthrough examples.

use hetero::{Platform, Workload};
use idioms::{IdiomInstance, IdiomKind};
use interp::{compile_module, Allocation, CompiledModule, Machine, Memory, Value, Vm};
use ssair::{Module, Type};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Which interpreter executes programs for profiling and validation.
///
/// The bytecode [`Vm`] is the production tier: each module is lowered
/// once ([`compile_module`]) and the flat instruction stream is reused
/// across every seed and oracle run. The tree-walking [`Machine`] is the
/// debug oracle — bit-for-bit identical results, steps and errors —
/// retained behind `IDIOMATCH_EXEC_BACKEND=walker`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecBackend {
    /// Compile to register bytecode once, execute on [`Vm`] (default).
    Bytecode,
    /// Tree-walk the SSA directly on [`Machine`] (debug oracle).
    Walker,
}

/// The process-wide backend choice, read once from the environment
/// variable `IDIOMATCH_EXEC_BACKEND` (`walker` selects the tree-walking
/// oracle; anything else, including unset, selects the bytecode VM).
#[must_use]
pub fn exec_backend() -> ExecBackend {
    static BACKEND: OnceLock<ExecBackend> = OnceLock::new();
    *BACKEND.get_or_init(
        || match std::env::var("IDIOMATCH_EXEC_BACKEND").as_deref() {
            Ok("walker") => ExecBackend::Walker,
            _ => ExecBackend::Bytecode,
        },
    )
}

/// A benchmark input generator: allocates the program's arrays for one
/// input seed and returns the entry-point arguments (the signature of
/// [`benchsuite::Benchmark::setup`]). The validation entry points accept
/// any `Fn(&mut Memory, u64) -> Vec<Value>` closure — generated programs
/// (`progen`) capture their input shape in the closure — and this alias
/// remains the plain-`fn` form the static benchmark table uses.
pub type SetupFn = fn(&mut Memory, u64) -> Vec<Value>;

/// Everything measured about one benchmark.
pub struct Analysis {
    /// Benchmark name.
    pub name: &'static str,
    /// Idiom instances per function.
    pub instances: Vec<IdiomInstance>,
    /// Instance counts per Table-1 class label.
    pub by_class: BTreeMap<&'static str, usize>,
    /// Fraction of the sequential dynamic cost inside detected idiom
    /// regions (Figure 17).
    pub coverage: f64,
    /// Modeled sequential time of the full program (milliseconds),
    /// scaled to the paper's input class.
    pub sequential_ms: f64,
    /// Modeled sequential time of the *idiom regions* only.
    pub idiom_ms: f64,
    /// Aggregate device workload of the idiom regions.
    pub workload: Workload,
    /// Measured (unscaled) per-run counts of the idiom regions, straight
    /// from the profiling run — the input to profile-guided offload
    /// decisions ([`hetero::best_configuration_profiled`]).
    pub profile: hetero::RegionProfile,
    /// The dominant idiom kind by dynamic cost (drives API selection).
    pub dominant_kind: Option<IdiomKind>,
    /// Frontend wall-clock seconds (Table 2, "without IDL").
    pub compile_s: f64,
    /// Detection wall-clock seconds (Table 2 adds this on top).
    pub detect_s: f64,
    /// Whether the paper treats this benchmark as idiom-dominated.
    pub covered: bool,
    /// Whether the lazy-copy optimization applies (Figure 18 red bars).
    pub lazy: bool,
    /// Whether the extracted kernels are expressible in Halide (pure
    /// arithmetic without calls or selects — §5.2: "stencils involving
    /// control flow in their computations are not easily expressible").
    pub halide_ok: bool,
    /// Polly baseline counts (reductions, stencils).
    pub polly: (usize, usize),
    /// ICC baseline reduction count.
    pub icc: usize,
}

/// Runs the full detection + profiling + modeling pipeline on one
/// benchmark.
///
/// # Panics
/// Panics if the bundled benchmark fails to compile or execute — that is
/// a bug in the suite, not an input condition.
#[must_use]
pub fn analyze(b: &benchsuite::Benchmark) -> Analysis {
    let t0 = Instant::now();
    let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
    let compile_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    // Parallel fan-out over functions; deterministic module-ordered output.
    let instances = idioms::detect_module(&module);
    let detect_s = t1.elapsed().as_secs_f64();

    let mut by_class: BTreeMap<&'static str, usize> = BTreeMap::new();
    for inst in &instances {
        *by_class.entry(inst.kind.class_label()).or_default() += 1;
    }

    // Profile one full run of the canonical workload. The bytecode VM
    // keeps dense per-function counters and maps them back to `ValueId`s,
    // so the resulting `Profile` is identical to the walker's.
    let profile = match exec_backend() {
        ExecBackend::Bytecode => {
            let code = compile_module(&module);
            let mut vm = Vm::new(&code);
            vm.set_profiling(true);
            let args = (b.setup)(&mut vm.mem, benchsuite::CANONICAL_SEED);
            vm.run(b.entry, &args).expect("bundled benchmark executes");
            vm.profile()
        }
        ExecBackend::Walker => {
            let mut vm = Machine::new(&module);
            let args = (b.setup)(&mut vm.mem, benchsuite::CANONICAL_SEED);
            vm.run(b.entry, &args).expect("bundled benchmark executes");
            vm.profile
        }
    };

    let mut total_cost = 0.0;
    for f in &module.functions {
        total_cost += profile.total_cost(f);
    }
    let mut idiom_cost = 0.0;
    let mut flops = 0.0;
    let mut bytes = 0.0;
    let mut costs_by_kind: BTreeMap<IdiomKind, f64> = BTreeMap::new();
    for inst in &instances {
        let f = module.function(&inst.function).expect("function exists");
        let in_region = |v: ssair::ValueId| {
            inst.blocks
                .iter()
                .any(|&blk| f.block(blk).instrs.contains(&v))
        };
        let c = profile.region_cost(f, in_region);
        idiom_cost += c;
        *costs_by_kind.entry(inst.kind).or_default() += c;
        flops += profile.region_flops(f, in_region);
        bytes += profile.region_bytes(f, in_region);
    }
    let coverage = if total_cost > 0.0 {
        idiom_cost / total_cost
    } else {
        0.0
    };
    let dominant_kind = costs_by_kind
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(&k, _)| k);

    let scaled = |x: f64| x * b.scale;
    let mut workload = Workload {
        flops: scaled(flops),
        bytes: scaled(bytes),
        // Footprint per transfer: the touched bytes of one kernel launch
        // (streaming idioms have ~unit reuse).
        transfer_bytes: scaled(bytes) / b.invocations.max(1.0),
        launches: b.invocations,
    };
    if dominant_kind == Some(IdiomKind::Gemm) {
        // GEMM is the one idiom with O(n) reuse per element: the raw
        // per-load byte count vastly overstates DRAM traffic and the
        // transferred footprint. Model the footprint as the three n×n
        // matrices and the DRAM traffic as a tiled multiple of it.
        let n2 = (workload.flops / 2.0).powf(2.0 / 3.0); // ≈ n²
        workload.transfer_bytes = 3.0 * n2 * 8.0;
        workload.bytes = workload.transfer_bytes * 16.0;
    }

    // Halide expressibility: every stencil/histogram kernel must be free
    // of calls and selects.
    let mut halide_ok = true;
    for inst in &instances {
        let (out_var, killers): (&str, Vec<ssair::ValueId>) = match inst.kind {
            IdiomKind::Stencil1D | IdiomKind::Stencil2D => {
                ("write.value", inst.family("read_value"))
            }
            IdiomKind::Histogram => {
                let mut ks = inst.family("read_value");
                if let Some(old) = inst.value("old_value") {
                    ks.push(old);
                }
                ("new_value", ks)
            }
            _ => continue,
        };
        let f = module.function(&inst.function).expect("function exists");
        let Some(out) = inst.value(out_var) else {
            continue;
        };
        let slice = ssair::analysis::kernel_slice(f, out, &killers, solver::PURE_CALLS);
        let pure_arith_only = slice.is_some_and(|sl| {
            sl.iter().all(|&v| {
                !matches!(
                    f.opcode(v),
                    Some(ssair::Opcode::Call | ssair::Opcode::Select)
                )
            })
        });
        if !pure_arith_only {
            halide_ok = false;
        }
        // Histograms additionally need an expressible index kernel.
        if inst.kind == IdiomKind::Histogram {
            if let Some(idx) = inst.value("bin_idx") {
                let ks = inst.family("read_value");
                let sl = ssair::analysis::kernel_slice(f, idx, &ks, solver::PURE_CALLS);
                let ok = sl.is_some_and(|sl| {
                    sl.iter().all(|&v| {
                        !matches!(
                            f.opcode(v),
                            Some(ssair::Opcode::Call | ssair::Opcode::Select)
                        )
                    })
                });
                if !ok {
                    halide_ok = false;
                }
            }
        }
    }

    let mut polly = (0usize, 0usize);
    let mut icc = 0usize;
    for f in &module.functions {
        let p = baselines::polly_detect(f);
        polly.0 += p.reductions();
        polly.1 += p.stencils();
        icc += baselines::icc_detect(f).reductions();
    }

    Analysis {
        name: b.name,
        instances,
        by_class,
        coverage,
        sequential_ms: hetero::sequential_time_ms(scaled(total_cost)),
        idiom_ms: hetero::sequential_time_ms(scaled(idiom_cost)),
        workload,
        profile: hetero::RegionProfile {
            cost_units: idiom_cost,
            total_cost_units: total_cost,
            flops,
            bytes,
            launches: b.invocations,
        },
        dominant_kind,
        compile_s,
        detect_s,
        covered: b.covered,
        lazy: b.lazy,
        halide_ok,
        polly,
        icc,
    }
}

/// The weakest parallel-safety class among `a`'s instances of the
/// dominant idiom kind — the certificate the whole offloaded region must
/// honour. Defaults to serial when no instance carries a certificate for
/// the kind (nothing is provable about an unseen region).
#[must_use]
pub fn region_safety(a: &Analysis) -> idioms::ParallelSafety {
    let Some(kind) = a.dominant_kind else {
        return idioms::ParallelSafety::Serial;
    };
    a.instances
        .iter()
        .filter(|i| i.kind == kind)
        .map(|i| i.certificate.safety)
        .max() // ParallelSafety orders weakest-last: Serial > ReductionOnly
        .unwrap_or(idioms::ParallelSafety::Serial)
}

/// End-to-end speedup (Figure 18) on `platform`: idiom regions run on the
/// modeled device under the best applicable API, the rest stays
/// sequential (Amdahl). The region's parallel-safety certificate is a
/// hard gate — a serial-certified region is never offered a parallel
/// host, no matter the modeled speedup.
#[must_use]
pub fn speedup_on(a: &Analysis, platform: Platform, lazy_copy: bool) -> Option<(hetero::Api, f64)> {
    let kind = a.dominant_kind?;
    let safety = region_safety(a);
    let (api, kernel_ms) = hetero::Api::AUTO
        .iter()
        .filter(|&&api| a.halide_ok || api != hetero::Api::Halide)
        .filter_map(|&api| {
            hetero::kernel_time_ms_certified(api, platform, kind, &a.workload, lazy_copy, safety)
                .map(|t| (api, t))
        })
        .min_by(|x, y| x.1.total_cmp(&y.1))?;
    let rest_ms = a.sequential_ms - a.idiom_ms;
    let total = rest_ms + kernel_ms;
    Some((api, a.sequential_ms / total))
}

/// Figure 19 reference points: the handwritten OpenMP (CPU) and OpenCL
/// (GPU) implementations. For EP, IS, MG and tpacf the references
/// restructure and parallelize the entire application ("beyond the domain
/// of automation", §8.3), so they accelerate everything, not just the
/// idiom regions.
#[must_use]
pub fn reference_speedup(a: &Analysis, platform: Platform) -> Option<f64> {
    let api = match platform {
        Platform::Cpu => hetero::Api::OpenMpRef,
        Platform::Gpu => hetero::Api::OpenClRef,
        Platform::IGpu => return None,
    };
    let kind = a.dominant_kind?;
    let whole_app = matches!(a.name, "EP" | "IS" | "MG" | "tpacf");
    let (accel_ms_base, rest_ms) = if whole_app {
        // Parallelize everything; approximate the whole program as one
        // region with the full sequential workload.
        let w = Workload {
            flops: a.workload.flops / a.coverage.max(0.05),
            bytes: a.workload.bytes / a.coverage.max(0.05),
            ..a.workload
        };
        (hetero::kernel_time_ms(api, platform, kind, &w, true)?, 0.0)
    } else {
        (
            hetero::kernel_time_ms(api, platform, kind, &a.workload, true)?,
            a.sequential_ms - a.idiom_ms,
        )
    };
    Some(a.sequential_ms / (rest_ms + accel_ms_base))
}

// ---------------------------------------------------------------------
// Differential validation (paper §6: "the transformed program computes
// the same results").
// ---------------------------------------------------------------------

/// Why a transformed program failed differential validation. Every
/// variant pinpoints *where* the two runs diverged; there is no
/// tolerance anywhere — float payloads are compared bitwise, and a
/// memory-size mismatch is itself a failure rather than a reason to
/// truncate the comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Validation was requested with an empty seed set: nothing was
    /// executed, so an `Ok` would be vacuous evidence of equivalence.
    NoSeeds,
    /// One of the two runs failed to execute (e.g. a type-confused or
    /// out-of-bounds API call introduced by a bad replacement).
    Exec {
        /// Which run failed: `"original"` or `"transformed"`.
        which: &'static str,
        /// The input seed of the failing run.
        seed: u64,
        /// The interpreter's error message.
        message: String,
    },
    /// The two runs ended with different memory sizes.
    MemorySize {
        /// The input seed.
        seed: u64,
        /// Final memory size of the original run.
        original: usize,
        /// Final memory size of the transformed run.
        transformed: usize,
    },
    /// The entry-point return values differ (floats compared bitwise).
    ReturnValue {
        /// The input seed.
        seed: u64,
        /// Return value of the original run.
        original: Value,
        /// Return value of the transformed run.
        transformed: Value,
    },
    /// One element of one program array differs (floats compared
    /// bitwise).
    Element {
        /// The input seed.
        seed: u64,
        /// Index of the diverging array in setup allocation order.
        array: usize,
        /// The diverging array's allocation record.
        allocation: Allocation,
        /// Element index within the array.
        index: usize,
        /// Element value in the original run.
        original: Value,
        /// Element value in the transformed run.
        transformed: Value,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::NoSeeds => {
                write!(f, "validation ran under zero input seeds (vacuous)")
            }
            ValidationError::Exec {
                which,
                seed,
                message,
            } => write!(f, "{which} run failed under seed {seed}: {message}"),
            ValidationError::MemorySize {
                seed,
                original,
                transformed,
            } => write!(
                f,
                "memory size diverged under seed {seed}: original {original} bytes, transformed {transformed} bytes"
            ),
            ValidationError::ReturnValue {
                seed,
                original,
                transformed,
            } => write!(
                f,
                "return value diverged under seed {seed}: original {original:?}, transformed {transformed:?}"
            ),
            ValidationError::Element {
                seed,
                array,
                allocation,
                index,
                original,
                transformed,
            } => write!(
                f,
                "array #{array} ({:?}[{}] at base {}) diverged at index {index} under seed {seed}: original {original:?}, transformed {transformed:?}",
                allocation.elem, allocation.count, allocation.base
            ),
        }
    }
}

/// What a passing validation actually covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationSummary {
    /// Number of input seeds executed.
    pub seeds: usize,
    /// Program arrays compared per seed.
    pub arrays: usize,
    /// Total elements compared across all seeds.
    pub elements: usize,
}

/// Bitwise value equality: floats by bit pattern (NaN-safe, no epsilon),
/// everything else exactly.
fn bitwise_eq(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

/// Loads element `i` of a recorded allocation with its own type.
fn load_elem(mem: &Memory, al: &Allocation, i: usize) -> Result<Value, String> {
    let addr = al.base + (al.elem.size_bytes() * i) as u64;
    match &al.elem {
        Type::F64 => mem.load_f64(addr).map(Value::F),
        Type::F32 => mem.load_f32(addr).map(Value::F),
        Type::I64 => mem.load_i64(addr).map(Value::I),
        Type::I32 => mem.load_i32(addr).map(Value::I),
        Type::I1 => mem.load_i8(addr).map(Value::I),
        Type::Ptr(_) => mem.load_i64(addr).map(|x| Value::P(x as u64)),
        Type::Void => Err("void allocation".into()),
    }
}

/// One full run: fresh machine, registered vendor hosts, seeded setup,
/// entry execution. Returns the entry's return value, the final memory
/// and how many allocations the setup made (the program's declared
/// arrays — everything allocated later is runtime-internal).
fn run_once(
    m: &Module,
    entry: &str,
    setup: &impl Fn(&mut Memory, u64) -> Vec<Value>,
    seed: u64,
) -> Result<(Value, Memory, usize), String> {
    let mut vm = Machine::new(m);
    hetero::hosts::register_all(&mut vm);
    let args = setup(&mut vm.mem, seed);
    let setup_allocs = vm.mem.allocations().len();
    let ret = vm.run(entry, &args).map_err(|e| e.to_string())?;
    Ok((ret, std::mem::take(&mut vm.mem), setup_allocs))
}

/// [`run_once`] on the bytecode tier: fresh [`Vm`] over an
/// already-compiled module, so callers amortize the lowering across
/// every seed and every oracle re-run.
fn run_once_vm(
    code: &CompiledModule<'_>,
    entry: &str,
    setup: &impl Fn(&mut Memory, u64) -> Vec<Value>,
    seed: u64,
) -> Result<(Value, Memory, usize), String> {
    let mut vm = Vm::new(code);
    hetero::hosts::register_all(&mut vm);
    let args = setup(&mut vm.mem, seed);
    let setup_allocs = vm.mem.allocations().len();
    let ret = vm.run(entry, &args).map_err(|e| e.to_string())?;
    Ok((ret, std::mem::take(&mut vm.mem), setup_allocs))
}

/// Differential validation of `transformed` against `original`: runs
/// `entry` on both modules under every seed in `seeds` and compares
/// (1) the entry return value, (2) the final memory size, and (3) every
/// element of every array the setup allocated, typed and bitwise.
///
/// This replaces the earlier whole-memory prefix snapshot, which
/// tolerated out-of-bounds reads (`unwrap_or(0)`), skipped the low
/// bytes, and silently ignored any divergence past the shorter run's
/// memory — and which could not see results that never touch memory at
/// all (a scalar reduction returned from the entry point).
pub fn validate_transform(
    original: &Module,
    transformed: &Module,
    entry: &str,
    setup: impl Fn(&mut Memory, u64) -> Vec<Value>,
    seeds: &[u64],
) -> Result<ValidationSummary, ValidationError> {
    match exec_backend() {
        ExecBackend::Bytecode => {
            // Compile each module exactly once; every seed reuses the
            // flat instruction streams.
            let code_o = compile_module(original);
            let code_t = compile_module(transformed);
            validate_compiled(&code_o, &code_t, entry, &setup, seeds)
        }
        ExecBackend::Walker => validate_runs(seeds, |which, seed| {
            let m = if which == "original" {
                original
            } else {
                transformed
            };
            run_once(m, entry, &setup, seed)
        }),
    }
}

/// [`validate_transform`] over two already-compiled modules — the shape
/// the reversal oracle wants, where one original is compared against many
/// rewritten variants without recompiling it each time.
fn validate_compiled(
    code_o: &CompiledModule<'_>,
    code_t: &CompiledModule<'_>,
    entry: &str,
    setup: &impl Fn(&mut Memory, u64) -> Vec<Value>,
    seeds: &[u64],
) -> Result<ValidationSummary, ValidationError> {
    validate_runs(seeds, |which, seed| {
        let code = if which == "original" { code_o } else { code_t };
        run_once_vm(code, entry, setup, seed)
    })
}

/// The backend-agnostic seed loop of [`validate_transform`]: `run` is
/// called with `"original"`/`"transformed"` and the seed, and its results
/// are compared bitwise (return value, memory size, every element of
/// every setup-allocated array).
fn validate_runs(
    seeds: &[u64],
    mut run: impl FnMut(&'static str, u64) -> Result<(Value, Memory, usize), String>,
) -> Result<ValidationSummary, ValidationError> {
    if seeds.is_empty() {
        return Err(ValidationError::NoSeeds);
    }
    let mut arrays = 0usize;
    let mut elements = 0usize;
    for &seed in seeds {
        let (ret_o, mem_o, n_setup) = run("original", seed).map_err(|e| ValidationError::Exec {
            which: "original",
            seed,
            message: e,
        })?;
        let (ret_t, mem_t, n_setup_t) =
            run("transformed", seed).map_err(|e| ValidationError::Exec {
                which: "transformed",
                seed,
                message: e,
            })?;
        debug_assert_eq!(n_setup, n_setup_t, "setup is deterministic");
        if !bitwise_eq(ret_o, ret_t) {
            return Err(ValidationError::ReturnValue {
                seed,
                original: ret_o,
                transformed: ret_t,
            });
        }
        if mem_o.size() != mem_t.size() {
            return Err(ValidationError::MemorySize {
                seed,
                original: mem_o.size(),
                transformed: mem_t.size(),
            });
        }
        arrays = n_setup;
        for (array, al) in mem_o.allocations()[..n_setup].iter().enumerate() {
            for index in 0..al.count {
                let exec = |which, message| ValidationError::Exec {
                    which,
                    seed,
                    message,
                };
                let vo = load_elem(&mem_o, al, index).map_err(|e| exec("original", e))?;
                let vt = load_elem(&mem_t, al, index).map_err(|e| exec("transformed", e))?;
                elements += 1;
                if !bitwise_eq(vo, vt) {
                    return Err(ValidationError::Element {
                        seed,
                        array,
                        allocation: al.clone(),
                        index,
                        original: vo,
                        transformed: vt,
                    });
                }
            }
        }
    }
    Ok(ValidationSummary {
        seeds: seeds.len(),
        arrays,
        elements,
    })
}

/// What the reversed-iteration oracle covered for one module.
#[derive(Debug, Clone, Default)]
pub struct ReversalOracle {
    /// Regions whose reversed run compared bitwise-equal.
    pub checked: usize,
    /// Regions the loop rewriter refused, with the reason — a coverage
    /// gap, never a verdict.
    pub skipped: Vec<(String, String)>,
}

/// Dynamically witnesses `IndependentIterations` certificates: for every
/// instance whose region still classifies as independent under
/// module-wide call-site alias facts (the same refinement the transform
/// driver applies), the *original* module is re-run with that loop's
/// iterations reversed ([`xform::reverse_loop`]) and the final machine
/// state compared bitwise against the forward run. Independent
/// iterations commute exactly — even in floating point — so any
/// divergence convicts the certificate.
///
/// Regions certified `ReductionOnly` or `Serial` are out of scope (their
/// iterations do not claim to commute), as are loop shapes the rewriter
/// refuses; both are reported, not failed.
///
/// # Errors
/// The first divergence or execution failure, as a [`ValidationError`].
pub fn check_reversal_oracle(
    module: &Module,
    instances: &[IdiomInstance],
    entry: &str,
    setup: impl Fn(&mut Memory, u64) -> Vec<Value>,
    seeds: &[u64],
) -> Result<ReversalOracle, ValidationError> {
    let facts = analysis::ParamAliasFacts::of_module(module);
    let mut oracle = ReversalOracle::default();
    // On the bytecode tier the forward module compiles once here and is
    // reused against every reversed variant (each of which compiles once
    // and runs under every seed).
    let code_o = match exec_backend() {
        ExecBackend::Bytecode => Some(compile_module(module)),
        ExecBackend::Walker => None,
    };
    for inst in instances {
        let Some(iv) = inst.value(inst.kind.outer_iterator_var()) else {
            continue;
        };
        let Some(f) = module.function(&inst.function) else {
            continue;
        };
        let an = ssair::analysis::Analyses::new(f);
        let map = ssair::analysis::AffineMap::new(f, &an);
        let cert = analysis::classify_region(f, &an, &map, &inst.blocks, iv, Some(&facts));
        if cert.safety != idioms::ParallelSafety::IndependentIterations {
            continue;
        }
        match xform::reverse::reversed_module(module, &inst.function, iv) {
            Ok(reversed) => {
                match &code_o {
                    Some(code_o) => {
                        let code_r = compile_module(&reversed);
                        validate_compiled(code_o, &code_r, entry, &setup, seeds)?;
                    }
                    None => {
                        validate_transform(module, &reversed, entry, &setup, seeds)?;
                    }
                }
                oracle.checked += 1;
            }
            Err(reason) => oracle.skipped.push((inst.function.clone(), reason)),
        }
    }
    Ok(oracle)
}

/// Whole-module transformation plus differential validation: detects all
/// idiom instances, applies every non-overlapping replacement
/// ([`xform::transform_module`]) and validates the surviving module
/// against the original under every seed.
#[derive(Debug)]
pub struct ModuleReport {
    /// The transformation outcomes (transformed module + per-instance
    /// replaced/shadowed/failed records).
    pub xform: xform::ModuleXform,
    /// The differential-validation verdict over all seeds.
    pub validation: Result<ValidationSummary, ValidationError>,
}

/// Runs detect → transform-all → execute-and-compare for one program.
/// The validation runs even when nothing was replaced (it then checks
/// interpreter determinism for free).
#[must_use]
pub fn transform_and_validate_module(
    module: &Module,
    entry: &str,
    setup: impl Fn(&mut Memory, u64) -> Vec<Value>,
    seeds: &[u64],
) -> ModuleReport {
    let xf = xform::transform_module(module);
    let validation = validate_transform(module, &xf.module, entry, setup, seeds);
    ModuleReport {
        xform: xf,
        validation,
    }
}

/// The full Figure-1 pipeline over one C source program, as one reusable
/// call: compile (`minicc`) → detect every idiom (`idioms`, with explicit
/// budgets so truncation is observable) → replace every instance
/// (`xform::transform_module`) → differentially validate the transformed
/// module against the original under every input seed.
///
/// This is the entry point the `progen` fuzz driver and the corpus replay
/// tests run per generated program; `detect_complete` distinguishes "no
/// instance found" from "the search was cut off".
#[derive(Debug)]
pub struct PipelineOutcome {
    /// The compiled (optimized, verified) original module.
    pub module: Module,
    /// Every detected idiom instance, in module order.
    pub instances: Vec<IdiomInstance>,
    /// Functions whose search hit a solver budget (empty = complete).
    pub incomplete_functions: Vec<String>,
    /// Total solver assignment steps across all functions and idioms
    /// (skeleton prepass included).
    pub solve_steps: u64,
    /// Steps of the shared loop-skeleton prepass (a subset of
    /// `solve_steps`, accounted once per function).
    pub skeleton_steps: u64,
    /// Idiom×function pairs the fingerprint prepass proved matchless
    /// (skipped with zero solver steps).
    pub pruned_pairs: u64,
    /// Wall-clock seconds per pipeline stage (frontend compile /
    /// detection / transformation / validation), so throughput numbers
    /// can separate the pipeline from its drivers.
    pub timings: PipelineTimings,
    /// The whole-module transformation result.
    pub xform: xform::ModuleXform,
    /// Structural IR errors of the transformed module
    /// (`ssair::verify::verify_module` over every function, generated
    /// kernels included), checked before any fault-injection hook runs.
    /// Always empty for a correct backend; the suite and corpus drivers
    /// assert on it.
    pub verify_errors: Vec<String>,
    /// The differential-validation verdict over all seeds.
    pub validation: Result<ValidationSummary, ValidationError>,
}

/// Wall-clock cost of each [`run_pipeline`] stage, in seconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTimings {
    /// minicc frontend (parse, lower, optimize, verify).
    pub compile_s: f64,
    /// Idiom detection over every function.
    pub detect_s: f64,
    /// Whole-module transformation (`xform::transform_instances`).
    pub transform_s: f64,
    /// Multi-seed differential validation.
    pub validate_s: f64,
}

impl PipelineOutcome {
    /// `true` when no per-function search was truncated by a budget.
    #[must_use]
    pub fn detect_complete(&self) -> bool {
        self.incomplete_functions.is_empty()
    }
}

/// Runs compile → detect → transform-all → validate on `source`.
///
/// # Errors
/// Returns the frontend error when `source` does not compile; every later
/// stage reports through [`PipelineOutcome`] instead of failing the call.
pub fn run_pipeline(
    source: &str,
    name: &str,
    entry: &str,
    setup: impl Fn(&mut Memory, u64) -> Vec<Value>,
    seeds: &[u64],
    opts: &idioms::DetectOptions,
) -> Result<PipelineOutcome, minicc::CompileError> {
    run_pipeline_with(source, name, entry, setup, seeds, opts, |_| {})
}

/// [`run_pipeline`] with a fault-injection hook applied to the
/// transformed module *between* transformation and validation. This is
/// how the fuzz harness proves the validator end-to-end: `progen`'s
/// canary corrupts an offloaded call here and the validation stage must
/// report the divergence. The honest pipeline passes a no-op.
///
/// # Errors
/// As [`run_pipeline`].
pub fn run_pipeline_with(
    source: &str,
    name: &str,
    entry: &str,
    setup: impl Fn(&mut Memory, u64) -> Vec<Value>,
    seeds: &[u64],
    opts: &idioms::DetectOptions,
    post_transform: impl FnOnce(&mut Module),
) -> Result<PipelineOutcome, minicc::CompileError> {
    let t = Instant::now();
    let module = minicc::compile(source, name)?;
    let compile_s = t.elapsed().as_secs_f64();
    let fs: Vec<&ssair::Function> = module.functions.iter().collect();
    let t = Instant::now();
    let detections = idioms::detect_functions(&fs, opts);
    let detect_s = t.elapsed().as_secs_f64();
    let incomplete_functions: Vec<String> = fs
        .iter()
        .zip(&detections)
        .filter(|(_, d)| !d.complete)
        .map(|(f, _)| f.name.clone())
        .collect();
    let solve_steps = detections.iter().map(|d| d.steps).sum();
    let skeleton_steps = detections.iter().map(|d| d.skeleton_steps).sum();
    let pruned_pairs = detections.iter().map(|d| d.pruned_pairs).sum();
    let instances: Vec<IdiomInstance> = detections.into_iter().flat_map(|d| d.instances).collect();
    let t = Instant::now();
    let mut xf = xform::transform_instances(&module, instances.clone());
    let transform_s = t.elapsed().as_secs_f64();
    // Structural check of the honest transformed module, before the
    // fault-injection hook may deliberately damage it.
    let verify_errors: Vec<String> = ssair::verify::verify_module(&xf.module)
        .err()
        .map(|es| es.iter().map(ToString::to_string).collect())
        .unwrap_or_default();
    post_transform(&mut xf.module);
    let t = Instant::now();
    let validation = validate_transform(&module, &xf.module, entry, setup, seeds);
    let validate_s = t.elapsed().as_secs_f64();
    Ok(PipelineOutcome {
        module,
        instances,
        incomplete_functions,
        solve_steps,
        skeleton_steps,
        pruned_pairs,
        timings: PipelineTimings {
            compile_s,
            detect_s,
            transform_s,
            validate_s,
        },
        xform: xf,
        verify_errors,
        validation,
    })
}

/// Applies the first applicable replacement of `kind` in `module` and
/// validates it differentially under the default seed set
/// ([`benchsuite::VALIDATION_SEEDS`]).
///
/// Returns the transformed module and the replacement description.
pub fn transform_and_validate(
    module: &Module,
    entry: &str,
    setup: impl Fn(&mut Memory, u64) -> Vec<Value>,
    kind: IdiomKind,
) -> Result<(Module, xform::Replacement), String> {
    let insts: Vec<_> = idioms::detect_module(module)
        .into_iter()
        .filter(|i| i.kind == kind)
        .collect();
    let inst = insts
        .first()
        .ok_or_else(|| format!("no {kind:?} instance found"))?;
    let mut transformed = module.clone();
    let rep = xform::apply_replacement(&mut transformed, inst, 0).map_err(|e| e.to_string())?;
    validate_transform(
        module,
        &transformed,
        entry,
        setup,
        &benchsuite::VALIDATION_SEEDS,
    )
    .map_err(|e| e.to_string())?;
    Ok((transformed, rep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_cg_finds_sparse_ops_and_high_coverage() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "CG")
            .unwrap();
        let a = analyze(&b);
        assert_eq!(a.by_class.get("Sparse Matrix Op."), Some(&2));
        assert_eq!(a.by_class.get("Scalar Reduction"), Some(&4));
        assert!(a.coverage > 0.5, "coverage {}", a.coverage);
        assert_eq!(a.dominant_kind, Some(IdiomKind::Spmv));
        let (api, speed) = speedup_on(&a, Platform::Gpu, true).unwrap();
        assert_eq!(api, hetero::Api::CuSparse);
        assert!(speed > 2.0, "CG GPU speedup {speed}");
    }

    #[test]
    fn uncovered_benchmarks_gain_little() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "BT")
            .unwrap();
        let a = analyze(&b);
        assert!(a.coverage < 0.5);
        if let Some((_, s)) = speedup_on(&a, Platform::Gpu, true) {
            assert!(s < 2.0, "Amdahl caps BT at {s}");
        }
    }

    #[test]
    fn transform_and_validate_spmv_benchmark() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "spmv")
            .unwrap();
        let module = minicc::compile(b.source, b.name).unwrap();
        let (transformed, rep) = transform_and_validate(&module, b.entry, b.setup, IdiomKind::Spmv)
            .expect("spmv replacement validates");
        assert_eq!(rep.callee, "csrmv_f64");
        assert!(transformed.functions.len() >= module.functions.len());
    }

    #[test]
    fn transform_and_validate_stencil_benchmark() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "stencil")
            .unwrap();
        let module = minicc::compile(b.source, b.name).unwrap();
        let (_, rep) = transform_and_validate(&module, b.entry, b.setup, IdiomKind::Stencil2D)
            .expect("stencil replacement validates");
        assert!(rep.callee.starts_with("halide_st2_"));
    }

    /// Applies the first replacement of `kind` and hands the transformed
    /// module to `corrupt` for tampering.
    fn replaced_and_corrupted(
        src: &str,
        fname: &str,
        kind: IdiomKind,
        corrupt: impl Fn(&mut Module),
    ) -> (Module, Module) {
        let module = minicc::compile(src, fname).unwrap();
        let inst = idioms::detect_module(&module)
            .into_iter()
            .find(|i| i.kind == kind)
            .expect("instance detected");
        let mut transformed = module.clone();
        xform::apply_replacement(&mut transformed, &inst, 0).expect("replaces");
        corrupt(&mut transformed);
        (module, transformed)
    }

    /// The masked-divergence regression (old validator bug): a corrupted
    /// replacement whose damage never touches memory — a wrong `init`
    /// argument on a reduction, whose result only flows into the entry's
    /// return value — was invisible to the whole-memory prefix snapshot.
    /// The precise validator must catch it via the return value.
    #[test]
    fn corrupted_call_argument_is_caught_even_when_memory_is_identical() {
        let src = "double s(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) a += x[i]; return a; }";
        let setup: SetupFn = |m, seed| {
            let x = m.alloc_f64_slice(&[1.0, -2.0, 3.5, 0.25, seed as f64]);
            vec![Value::P(x), Value::I(5)]
        };
        let (module, corrupted) = replaced_and_corrupted(src, "s", IdiomKind::Reduction, |t| {
            // Swap the device call's `init` argument (0.0 -> 12.5):
            // args are [read bases.., begin, end, init, extras..].
            let f = t.function_mut("s").expect("entry function");
            let call = f
                .value_ids()
                .find(|&v| {
                    f.instr(v)
                        .and_then(|i| i.callee.as_deref())
                        .is_some_and(|c| c.starts_with("lift_red_"))
                })
                .expect("device call present");
            let bad = f.const_float(Type::F64, 12.5);
            f.instr_mut(call).expect("call").operands[3] = bad;
        });
        let err = validate_transform(&module, &corrupted, "s", setup, &[0])
            .expect_err("corruption must be caught");
        assert!(
            matches!(err, ValidationError::ReturnValue { .. }),
            "divergence is return-value-only (memory identical): {err}"
        );
    }

    /// A corrupted pointer argument redirects the stencil output into its
    /// input array; the validator must name the diverging array and
    /// element instead of a generic "memory differs".
    #[test]
    fn corrupted_pointer_argument_reports_array_and_index() {
        let src = "void st(double* o, double* a, int n) { for (int i = 1; i < n - 1; i++) o[i] = a[i-1] + 2.0*a[i] + a[i+1]; }";
        let setup: SetupFn = |m, _seed| {
            let o = m.alloc_f64_slice(&[0.0; 8]);
            let a = m.alloc_f64_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
            vec![Value::P(o), Value::P(a), Value::I(8)]
        };
        let (module, corrupted) = replaced_and_corrupted(src, "st", IdiomKind::Stencil1D, |t| {
            // Point the device call's output base at the input array:
            // args are [out_base, read bases.., begin, end, extras..].
            let f = t.function_mut("st").expect("entry function");
            let call = f
                .value_ids()
                .find(|&v| {
                    f.instr(v)
                        .and_then(|i| i.callee.as_deref())
                        .is_some_and(|c| c.starts_with("halide_st1_"))
                })
                .expect("device call present");
            let ops = &mut f.instr_mut(call).expect("call").operands;
            ops[0] = ops[1];
        });
        let err = validate_transform(&module, &corrupted, "st", setup, &[0])
            .expect_err("corruption must be caught");
        match err {
            ValidationError::Element { array, index, .. } => {
                // The untouched output array (allocation #0) diverges
                // first, at the first interior element.
                assert_eq!(array, 0, "output array is setup allocation #0");
                assert_eq!(index, 1, "first stencil-written element");
            }
            other => panic!("expected an element divergence, got {other}"),
        }
    }

    /// Zero seeds means zero evidence: the validator refuses instead of
    /// returning a vacuous `Ok`.
    #[test]
    fn empty_seed_set_is_a_validation_error() {
        let src = "double s(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) a += x[i]; return a; }";
        let setup: SetupFn = |m, _seed| {
            let x = m.alloc_f64_slice(&[1.0, 2.0]);
            vec![Value::P(x), Value::I(2)]
        };
        let module = minicc::compile(src, "s").unwrap();
        let err = validate_transform(&module, &module, "s", setup, &[]).unwrap_err();
        assert_eq!(err, ValidationError::NoSeeds);
    }

    /// A type-confused call (bad replacement) fails validation through
    /// `ExecError` instead of aborting the process.
    #[test]
    fn type_confused_replacement_fails_validation_gracefully() {
        let src = "double s(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) a += x[i]; return a; }";
        let setup: SetupFn = |m, _seed| {
            let x = m.alloc_f64_slice(&[1.0, 2.0]);
            vec![Value::P(x), Value::I(2)]
        };
        let (module, corrupted) = replaced_and_corrupted(src, "s", IdiomKind::Reduction, |t| {
            // Pass the float init where the device loop expects the
            // integer end bound.
            let f = t.function_mut("s").expect("entry function");
            let call = f
                .value_ids()
                .find(|&v| {
                    f.instr(v)
                        .and_then(|i| i.callee.as_deref())
                        .is_some_and(|c| c.starts_with("lift_red_"))
                })
                .expect("device call present");
            let bad = f.const_float(Type::F64, 2.0);
            f.instr_mut(call).expect("call").operands[2] = bad;
        });
        let err = validate_transform(&module, &corrupted, "s", setup, &[0])
            .expect_err("type confusion must fail validation");
        assert!(
            matches!(
                &err,
                ValidationError::Exec {
                    which: "transformed",
                    ..
                }
            ),
            "got {err}"
        );
    }
}
