//! # idiomatch-core — the end-to-end pipeline (paper Figure 1)
//!
//! Ties the workspace together into the workflow of the paper's Figure 1:
//! C source → optimized SSA IR (`minicc`) → constraint-based idiom
//! detection (`idl` + `solver` + `idioms`) → API selection (`hetero`) →
//! code replacement (`xform`) → linked, executable program (`interp`).
//!
//! [`analyze`] runs detection, profiling and modeling for one benchmark
//! and returns everything the evaluation harness (crates/bench) needs to
//! regenerate the paper's tables and figures; [`transform_and_validate`]
//! performs an actual replacement and checks the transformed program
//! against the original by execution.

use hetero::{Platform, Workload};
use idioms::{IdiomInstance, IdiomKind};
use interp::{Machine, Value};
use ssair::Module;
use std::collections::BTreeMap;
use std::time::Instant;

/// Everything measured about one benchmark.
pub struct Analysis {
    /// Benchmark name.
    pub name: &'static str,
    /// Idiom instances per function.
    pub instances: Vec<IdiomInstance>,
    /// Instance counts per Table-1 class label.
    pub by_class: BTreeMap<&'static str, usize>,
    /// Fraction of the sequential dynamic cost inside detected idiom
    /// regions (Figure 17).
    pub coverage: f64,
    /// Modeled sequential time of the full program (milliseconds),
    /// scaled to the paper's input class.
    pub sequential_ms: f64,
    /// Modeled sequential time of the *idiom regions* only.
    pub idiom_ms: f64,
    /// Aggregate device workload of the idiom regions.
    pub workload: Workload,
    /// The dominant idiom kind by dynamic cost (drives API selection).
    pub dominant_kind: Option<IdiomKind>,
    /// Frontend wall-clock seconds (Table 2, "without IDL").
    pub compile_s: f64,
    /// Detection wall-clock seconds (Table 2 adds this on top).
    pub detect_s: f64,
    /// Whether the paper treats this benchmark as idiom-dominated.
    pub covered: bool,
    /// Whether the lazy-copy optimization applies (Figure 18 red bars).
    pub lazy: bool,
    /// Whether the extracted kernels are expressible in Halide (pure
    /// arithmetic without calls or selects — §5.2: "stencils involving
    /// control flow in their computations are not easily expressible").
    pub halide_ok: bool,
    /// Polly baseline counts (reductions, stencils).
    pub polly: (usize, usize),
    /// ICC baseline reduction count.
    pub icc: usize,
}

/// Runs the full detection + profiling + modeling pipeline on one
/// benchmark.
///
/// # Panics
/// Panics if the bundled benchmark fails to compile or execute — that is
/// a bug in the suite, not an input condition.
#[must_use]
pub fn analyze(b: &benchsuite::Benchmark) -> Analysis {
    let t0 = Instant::now();
    let module = minicc::compile(b.source, b.name).expect("bundled benchmark compiles");
    let compile_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    // Parallel fan-out over functions; deterministic module-ordered output.
    let instances = idioms::detect_module(&module);
    let detect_s = t1.elapsed().as_secs_f64();

    let mut by_class: BTreeMap<&'static str, usize> = BTreeMap::new();
    for inst in &instances {
        *by_class.entry(inst.kind.class_label()).or_default() += 1;
    }

    // Profile one full run.
    let mut vm = Machine::new(&module);
    let args = (b.setup)(&mut vm.mem);
    vm.run(b.entry, &args).expect("bundled benchmark executes");

    let mut total_cost = 0.0;
    for f in &module.functions {
        total_cost += vm.profile.total_cost(f);
    }
    let mut idiom_cost = 0.0;
    let mut flops = 0.0;
    let mut bytes = 0.0;
    let mut costs_by_kind: BTreeMap<IdiomKind, f64> = BTreeMap::new();
    for inst in &instances {
        let f = module.function(&inst.function).expect("function exists");
        let in_region = |v: ssair::ValueId| {
            inst.blocks
                .iter()
                .any(|&blk| f.block(blk).instrs.contains(&v))
        };
        let c = vm.profile.region_cost(f, in_region);
        idiom_cost += c;
        *costs_by_kind.entry(inst.kind).or_default() += c;
        flops += vm.profile.region_flops(f, in_region);
        bytes += vm.profile.region_bytes(f, in_region);
    }
    let coverage = if total_cost > 0.0 {
        idiom_cost / total_cost
    } else {
        0.0
    };
    let dominant_kind = costs_by_kind
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(&k, _)| k);

    let scaled = |x: f64| x * b.scale;
    let mut workload = Workload {
        flops: scaled(flops),
        bytes: scaled(bytes),
        // Footprint per transfer: the touched bytes of one kernel launch
        // (streaming idioms have ~unit reuse).
        transfer_bytes: scaled(bytes) / b.invocations.max(1.0),
        launches: b.invocations,
    };
    if dominant_kind == Some(IdiomKind::Gemm) {
        // GEMM is the one idiom with O(n) reuse per element: the raw
        // per-load byte count vastly overstates DRAM traffic and the
        // transferred footprint. Model the footprint as the three n×n
        // matrices and the DRAM traffic as a tiled multiple of it.
        let n2 = (workload.flops / 2.0).powf(2.0 / 3.0); // ≈ n²
        workload.transfer_bytes = 3.0 * n2 * 8.0;
        workload.bytes = workload.transfer_bytes * 16.0;
    }

    // Halide expressibility: every stencil/histogram kernel must be free
    // of calls and selects.
    let mut halide_ok = true;
    for inst in &instances {
        let (out_var, killers): (&str, Vec<ssair::ValueId>) = match inst.kind {
            IdiomKind::Stencil1D | IdiomKind::Stencil2D => {
                ("write.value", inst.family("read_value"))
            }
            IdiomKind::Histogram => {
                let mut ks = inst.family("read_value");
                if let Some(old) = inst.value("old_value") {
                    ks.push(old);
                }
                ("new_value", ks)
            }
            _ => continue,
        };
        let f = module.function(&inst.function).expect("function exists");
        let Some(out) = inst.value(out_var) else {
            continue;
        };
        let slice = ssair::analysis::kernel_slice(f, out, &killers, solver::PURE_CALLS);
        let pure_arith_only = slice.is_some_and(|sl| {
            sl.iter().all(|&v| {
                !matches!(
                    f.opcode(v),
                    Some(ssair::Opcode::Call | ssair::Opcode::Select)
                )
            })
        });
        if !pure_arith_only {
            halide_ok = false;
        }
        // Histograms additionally need an expressible index kernel.
        if inst.kind == IdiomKind::Histogram {
            if let Some(idx) = inst.value("bin_idx") {
                let ks = inst.family("read_value");
                let sl = ssair::analysis::kernel_slice(f, idx, &ks, solver::PURE_CALLS);
                let ok = sl.is_some_and(|sl| {
                    sl.iter().all(|&v| {
                        !matches!(
                            f.opcode(v),
                            Some(ssair::Opcode::Call | ssair::Opcode::Select)
                        )
                    })
                });
                if !ok {
                    halide_ok = false;
                }
            }
        }
    }

    let mut polly = (0usize, 0usize);
    let mut icc = 0usize;
    for f in &module.functions {
        let p = baselines::polly_detect(f);
        polly.0 += p.reductions();
        polly.1 += p.stencils();
        icc += baselines::icc_detect(f).reductions();
    }

    Analysis {
        name: b.name,
        instances,
        by_class,
        coverage,
        sequential_ms: hetero::sequential_time_ms(scaled(total_cost)),
        idiom_ms: hetero::sequential_time_ms(scaled(idiom_cost)),
        workload,
        dominant_kind,
        compile_s,
        detect_s,
        covered: b.covered,
        lazy: b.lazy,
        halide_ok,
        polly,
        icc,
    }
}

/// End-to-end speedup (Figure 18) on `platform`: idiom regions run on the
/// modeled device under the best applicable API, the rest stays
/// sequential (Amdahl).
#[must_use]
pub fn speedup_on(a: &Analysis, platform: Platform, lazy_copy: bool) -> Option<(hetero::Api, f64)> {
    let kind = a.dominant_kind?;
    let (api, kernel_ms) = hetero::Api::AUTO
        .iter()
        .filter(|&&api| a.halide_ok || api != hetero::Api::Halide)
        .filter_map(|&api| {
            hetero::kernel_time_ms(api, platform, kind, &a.workload, lazy_copy).map(|t| (api, t))
        })
        .min_by(|x, y| x.1.total_cmp(&y.1))?;
    let rest_ms = a.sequential_ms - a.idiom_ms;
    let total = rest_ms + kernel_ms;
    Some((api, a.sequential_ms / total))
}

/// Figure 19 reference points: the handwritten OpenMP (CPU) and OpenCL
/// (GPU) implementations. For EP, IS, MG and tpacf the references
/// restructure and parallelize the entire application ("beyond the domain
/// of automation", §8.3), so they accelerate everything, not just the
/// idiom regions.
#[must_use]
pub fn reference_speedup(a: &Analysis, platform: Platform) -> Option<f64> {
    let api = match platform {
        Platform::Cpu => hetero::Api::OpenMpRef,
        Platform::Gpu => hetero::Api::OpenClRef,
        Platform::IGpu => return None,
    };
    let kind = a.dominant_kind?;
    let whole_app = matches!(a.name, "EP" | "IS" | "MG" | "tpacf");
    let (accel_ms_base, rest_ms) = if whole_app {
        // Parallelize everything; approximate the whole program as one
        // region with the full sequential workload.
        let w = Workload {
            flops: a.workload.flops / a.coverage.max(0.05),
            bytes: a.workload.bytes / a.coverage.max(0.05),
            ..a.workload
        };
        (hetero::kernel_time_ms(api, platform, kind, &w, true)?, 0.0)
    } else {
        (
            hetero::kernel_time_ms(api, platform, kind, &a.workload, true)?,
            a.sequential_ms - a.idiom_ms,
        )
    };
    Some(a.sequential_ms / (rest_ms + accel_ms_base))
}

/// Applies the first applicable replacement of `kind` in `module` and
/// validates it by running `entry` with `setup` twice (original vs
/// transformed) and comparing all output arrays byte-for-byte.
///
/// Returns the transformed module and the replacement description.
pub fn transform_and_validate(
    module: &Module,
    entry: &str,
    setup: fn(&mut interp::Memory) -> Vec<Value>,
    kind: IdiomKind,
) -> Result<(Module, xform::Replacement), String> {
    let insts: Vec<_> = idioms::detect_module(module)
        .into_iter()
        .filter(|i| i.kind == kind)
        .collect();
    let inst = insts
        .first()
        .ok_or_else(|| format!("no {kind:?} instance found"))?;
    let mut transformed = module.clone();
    let rep = xform::apply_replacement(&mut transformed, inst, 0).map_err(|e| e.to_string())?;
    let run = |m: &Module| -> Result<(Vec<u8>,), String> {
        let mut vm = Machine::new(m);
        hetero::hosts::register_all(&mut vm);
        let args = setup(&mut vm.mem);
        vm.run(entry, &args).map_err(|e| e.to_string())?;
        // Snapshot the whole memory for comparison.
        let size = vm.mem.size();
        let mut snap = Vec::with_capacity(size / 8);
        let mut addr = 8u64;
        while (addr as usize) + 8 <= size {
            snap.extend_from_slice(&vm.mem.load_i64(addr).unwrap_or(0).to_le_bytes());
            addr += 8;
        }
        Ok((snap,))
    };
    let (orig,) = run(module)?;
    let (xfmd,) = run(&transformed)?;
    // The transformed run may allocate more (generated kernels don't, but
    // be tolerant): compare the common prefix, which covers all benchmark
    // arrays (allocated during setup, before any growth).
    let n = orig.len().min(xfmd.len());
    if orig[..n] != xfmd[..n] {
        return Err("transformed program produced different memory contents".into());
    }
    Ok((transformed, rep))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_cg_finds_sparse_ops_and_high_coverage() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "CG")
            .unwrap();
        let a = analyze(&b);
        assert_eq!(a.by_class.get("Sparse Matrix Op."), Some(&2));
        assert_eq!(a.by_class.get("Scalar Reduction"), Some(&4));
        assert!(a.coverage > 0.5, "coverage {}", a.coverage);
        assert_eq!(a.dominant_kind, Some(IdiomKind::Spmv));
        let (api, speed) = speedup_on(&a, Platform::Gpu, true).unwrap();
        assert_eq!(api, hetero::Api::CuSparse);
        assert!(speed > 2.0, "CG GPU speedup {speed}");
    }

    #[test]
    fn uncovered_benchmarks_gain_little() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "BT")
            .unwrap();
        let a = analyze(&b);
        assert!(a.coverage < 0.5);
        if let Some((_, s)) = speedup_on(&a, Platform::Gpu, true) {
            assert!(s < 2.0, "Amdahl caps BT at {s}");
        }
    }

    #[test]
    fn transform_and_validate_spmv_benchmark() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "spmv")
            .unwrap();
        let module = minicc::compile(b.source, b.name).unwrap();
        let (transformed, rep) = transform_and_validate(&module, b.entry, b.setup, IdiomKind::Spmv)
            .expect("spmv replacement validates");
        assert_eq!(rep.callee, "csrmv_f64");
        assert!(transformed.functions.len() >= module.functions.len());
    }

    #[test]
    fn transform_and_validate_stencil_benchmark() {
        let b = benchsuite::all()
            .into_iter()
            .find(|b| b.name == "stencil")
            .unwrap();
        let module = minicc::compile(b.source, b.name).unwrap();
        let (_, rep) = transform_and_validate(&module, b.entry, b.setup, IdiomKind::Stencil2D)
            .expect("stencil replacement validates");
        assert!(rep.callee.starts_with("halide_st2_"));
    }
}
