//! # baselines — the alternative detection approaches of Table 1
//!
//! The paper compares IDL against two parallelizing compilers (§7):
//!
//! * **Polly** — an LLVM polyhedral optimizer. It models *static control
//!   parts* (SCoPs): loop nests with affine bounds and affine memory
//!   accesses, no calls, no data-dependent control. Inside SCoPs it can
//!   recognize parallel (stencil-like) loops and reductions — but
//!   floating-point reductions require reassociation, which is illegal
//!   without `-ffast-math`, so only *integer* reductions count; and any
//!   indirect access (histograms, CSR sparse rows) breaks the affine
//!   model entirely. [`polly_detect`] implements exactly these capability
//!   boundaries.
//! * **ICC** `-parallel` — dependence-analysis-based auto-parallelization
//!   with a dedicated scalar-reduction recognizer. It handles plain
//!   associative updates (`s += expr`) over affine reads, but not
//!   call-based kernels (`fmax`), data-dependent selects, or indirect
//!   reads. [`icc_detect`] mirrors that.
//!
//! Both return per-loop classifications so the Table 1 / Figure 16
//! comparison can be made per benchmark. As in the paper (§7), these are
//! parallelizers, not idiom matchers: "detecting" here means the loop was
//! captured by the tool's model at all.

use ssair::analysis::Analyses;
use ssair::{BlockId, Function, Opcode, ValueId, ValueKind};

/// What a baseline detector found in one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineFind {
    /// A scalar reduction the tool can parallelize.
    Reduction,
    /// A stencil-like affine parallel loop.
    Stencil,
}

/// Detections of one baseline tool over one function.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// (loop header block, classification).
    pub finds: Vec<(BlockId, BaselineFind)>,
}

impl BaselineReport {
    /// Number of detected reductions.
    #[must_use]
    pub fn reductions(&self) -> usize {
        self.finds
            .iter()
            .filter(|(_, f)| *f == BaselineFind::Reduction)
            .count()
    }

    /// Number of detected stencil-like parallel loops.
    #[must_use]
    pub fn stencils(&self) -> usize {
        self.finds
            .iter()
            .filter(|(_, f)| *f == BaselineFind::Stencil)
            .count()
    }
}

/// `true` if `v` is an affine expression of loop-header phis, constants
/// and function arguments (the polyhedral access model): sums/differences
/// of terms, each a phi, a parameter, a constant, or phi×parameter /
/// phi×constant. Anything passing through a load is non-affine.
fn is_affine(f: &Function, v: ValueId, depth: usize) -> bool {
    if depth > 16 {
        return false;
    }
    match &f.value(v).kind {
        ValueKind::ConstInt(_) | ValueKind::Argument { .. } => true,
        ValueKind::ConstFloat(_) => false,
        ValueKind::Instr(i) => match i.opcode {
            Opcode::Phi => true, // induction variables are the affine dims
            Opcode::SExt | Opcode::ZExt | Opcode::Trunc => is_affine(f, i.operands[0], depth + 1),
            Opcode::Add | Opcode::Sub => {
                is_affine(f, i.operands[0], depth + 1) && is_affine(f, i.operands[1], depth + 1)
            }
            Opcode::Mul => {
                let linear = |a: ValueId, b: ValueId| {
                    is_affine(f, a, depth + 1)
                        && matches!(
                            f.value(b).kind,
                            ValueKind::ConstInt(_) | ValueKind::Argument { .. }
                        )
                };
                linear(i.operands[0], i.operands[1]) || linear(i.operands[1], i.operands[0])
            }
            _ => false,
        },
    }
}

/// Memory-access and call scan for the SCoP test.
struct RegionScan {
    affine: bool,
    has_call: bool,
    has_select: bool,
    loads: Vec<ValueId>,
    stores: Vec<ValueId>,
}

fn scan_region(f: &Function, blocks: &[BlockId]) -> RegionScan {
    let mut s = RegionScan {
        affine: true,
        has_call: false,
        has_select: false,
        loads: Vec::new(),
        stores: Vec::new(),
    };
    for &b in blocks {
        for &v in &f.block(b).instrs {
            let Some(i) = f.instr(v) else { continue };
            match i.opcode {
                Opcode::Load => {
                    if !address_affine(f, i.operands[0]) {
                        s.affine = false;
                    }
                    s.loads.push(v);
                }
                Opcode::Store => {
                    if !address_affine(f, i.operands[1]) {
                        s.affine = false;
                    }
                    s.stores.push(v);
                }
                Opcode::Call => s.has_call = true,
                Opcode::Select => s.has_select = true,
                _ => {}
            }
        }
    }
    s
}

fn root_of(f: &Function, mut v: ValueId) -> ValueId {
    loop {
        match f.instr(v) {
            Some(i) if i.opcode == Opcode::Gep => v = i.operands[0],
            _ => return v,
        }
    }
}

fn address_affine(f: &Function, addr: ValueId) -> bool {
    match f.instr(addr) {
        Some(i) if i.opcode == Opcode::Gep => {
            // Base must be a parameter or alloca; index affine.
            let base_ok = match &f.value(i.operands[0]).kind {
                ValueKind::Argument { .. } => true,
                ValueKind::Instr(bi) => bi.opcode == Opcode::Alloca,
                _ => false,
            };
            base_ok && is_affine(f, i.operands[1], 0)
        }
        _ => false,
    }
}

/// A loop-carried scalar (non-iterator phi) with its update value.
fn reduction_phis(f: &Function, an: &Analyses, header: BlockId) -> Vec<(ValueId, ValueId)> {
    let mut out = Vec::new();
    for &v in &f.block(header).instrs {
        let Some(i) = f.instr(v) else { continue };
        if i.opcode != Opcode::Phi {
            break;
        }
        // Iterator phis feed an icmp in the header; accumulators don't.
        let is_iterator = an.defuse.users(v).iter().any(|&u| {
            matches!(f.opcode(u), Some(Opcode::ICmp(_))) && an.layout.block_of(u) == Some(header)
        });
        if is_iterator {
            continue;
        }
        // The loop-carried update: incoming value from inside the loop.
        for (&val, &inb) in i.operands.iter().zip(&i.incoming) {
            let from_inside = an
                .loops
                .loop_with_header(header)
                .is_some_and(|l| l.contains(inb));
            if from_inside && val != v {
                out.push((v, val));
            }
        }
    }
    out
}

/// Is `update` a plain associative update `op(acc, expr)` with `op` in
/// {add, mul, fadd, fmul} and `expr` free of calls/selects/loads-of-loads?
fn plain_associative_update(f: &Function, acc: ValueId, update: ValueId) -> bool {
    let Some(i) = f.instr(update) else {
        return false;
    };
    if !matches!(
        i.opcode,
        Opcode::Add | Opcode::Mul | Opcode::FAdd | Opcode::FMul
    ) {
        return false;
    }
    let other = if i.operands[0] == acc {
        i.operands[1]
    } else if i.operands[1] == acc {
        i.operands[0]
    } else {
        return false;
    };
    expr_is_simple(f, other, 0)
}

/// No calls, selects, phis, or indirect loads below `v`.
fn expr_is_simple(f: &Function, v: ValueId, depth: usize) -> bool {
    if depth > 24 {
        return false;
    }
    match &f.value(v).kind {
        ValueKind::ConstInt(_) | ValueKind::ConstFloat(_) | ValueKind::Argument { .. } => true,
        ValueKind::Instr(i) => match i.opcode {
            Opcode::Call | Opcode::Select | Opcode::Phi => false,
            Opcode::Load => address_affine(f, i.operands[0]),
            Opcode::Store | Opcode::Br | Opcode::CondBr | Opcode::Ret | Opcode::Alloca => false,
            _ => i
                .operands
                .iter()
                .all(|&op| expr_is_simple(f, op, depth + 1)),
        },
    }
}

/// The Polly-like polyhedral detector.
#[must_use]
pub fn polly_detect(f: &Function) -> BaselineReport {
    let an = Analyses::new(f);
    let mut report = BaselineReport::default();
    for l in &an.loops.loops {
        // Only report the outermost loop of each affine nest.
        if l.parent.is_some() {
            continue;
        }
        let scan = scan_region(f, &l.blocks);
        // SCoP requirements: affine accesses, no calls. (Polly tolerates
        // selects, but any non-affine access poisons the region.)
        if !scan.affine || scan.has_call {
            continue;
        }
        let mut inner_reduction = false;
        for il in an.loops.loops.iter().filter(|il| l.contains(il.header)) {
            for (acc, update) in reduction_phis(f, &an, il.header) {
                // FP reduction needs reassociation => -ffast-math; without
                // it Polly only parallelizes integer reductions.
                if f.value(acc).ty.is_integer() && plain_associative_update(f, acc, update) {
                    report.finds.push((il.header, BaselineFind::Reduction));
                    inner_reduction = true;
                }
            }
        }
        if !inner_reduction && !scan.stores.is_empty() {
            // A fully affine nest with stores and no loop-carried scalar:
            // a stencil-like parallel loop. Reading any array that is also
            // written creates loop-carried array dependences Polly cannot
            // parallelize away, so such nests are rejected.
            let any_scalar_carry = an
                .loops
                .loops
                .iter()
                .filter(|il| l.contains(il.header))
                .any(|il| !reduction_phis(f, &an, il.header).is_empty());
            let store_roots: Vec<ValueId> = scan
                .stores
                .iter()
                .map(|&st| root_of(f, f.instr(st).expect("store").operands[1]))
                .collect();
            let in_place = scan.loads.iter().any(|&ld| {
                store_roots.contains(&root_of(f, f.instr(ld).expect("load").operands[0]))
            });
            if !any_scalar_carry && !in_place {
                report.finds.push((l.header, BaselineFind::Stencil));
            }
        }
    }
    report
}

/// The ICC-like `-parallel` reduction recognizer.
#[must_use]
pub fn icc_detect(f: &Function) -> BaselineReport {
    let an = Analyses::new(f);
    let mut report = BaselineReport::default();
    for l in &an.loops.loops {
        let scan = scan_region(f, &l.blocks);
        if scan.has_call {
            continue; // unanalyzable side effects
        }
        for (acc, update) in reduction_phis(f, &an, l.header) {
            // ICC handles float and integer sums/products, but only plain
            // associative updates over provably independent reads.
            if plain_associative_update(f, acc, update) && scan.stores.is_empty() {
                report.finds.push((l.header, BaselineFind::Reduction));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> ssair::Module {
        minicc::compile(src, "t").expect("compiles")
    }

    #[test]
    fn icc_finds_plain_sums_but_not_kernel_reductions() {
        let m = compile(
            "double plain(double* x, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) s += x[i];
                return s;
            }
            double kernel_red(double* x, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) s = fmax(s, fabs(x[i]));
                return s;
            }",
        );
        assert_eq!(icc_detect(m.function("plain").unwrap()).reductions(), 1);
        assert_eq!(
            icc_detect(m.function("kernel_red").unwrap()).reductions(),
            0
        );
    }

    #[test]
    fn polly_only_takes_integer_reductions() {
        let m = compile(
            "double fsum(double* x, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) s += x[i];
                return s;
            }
            int isum(int* x, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += x[i];
                return s;
            }",
        );
        assert_eq!(
            polly_detect(m.function("fsum").unwrap()).reductions(),
            0,
            "no -ffast-math"
        );
        assert_eq!(polly_detect(m.function("isum").unwrap()).reductions(), 1);
        // ICC takes both.
        assert_eq!(icc_detect(m.function("fsum").unwrap()).reductions(), 1);
    }

    #[test]
    fn indirect_accesses_defeat_both_baselines() {
        let m = compile(
            "void histo(int* img, int* bins, int n) {
                for (int i = 0; i < n; i++) bins[img[i]] = bins[img[i]] + 1;
            }
            void spmv(double* a, int* rowstr, int* colidx, double* z, double* r, int m) {
                for (int j = 0; j < m; j++) {
                    double d = 0.0;
                    for (int k = rowstr[j]; k < rowstr[j+1]; k++)
                        d = d + a[k] * z[colidx[k]];
                    r[j] = d;
                }
            }",
        );
        for fname in ["histo", "spmv"] {
            let f = m.function(fname).unwrap();
            assert_eq!(polly_detect(f).finds.len(), 0, "{fname} is non-affine");
            assert_eq!(icc_detect(f).finds.len(), 0, "{fname} has indirect reads");
        }
    }

    #[test]
    fn polly_takes_affine_stencils() {
        let m = compile(
            "void jacobi(double* out, double* in_, int n) {
                for (int i = 1; i < n - 1; i++)
                    for (int j = 1; j < n - 1; j++)
                        out[i*n+j] = 0.2 * (in_[(i-1)*n+j] + in_[(i+1)*n+j] + in_[i*n+j]);
            }
            void sqrt_stencil(double* out, double* in_, int n) {
                for (int i = 1; i < n - 1; i++)
                    out[i] = sqrt(in_[i-1] + in_[i+1]);
            }",
        );
        assert_eq!(polly_detect(m.function("jacobi").unwrap()).stencils(), 1);
        // Calls poison the SCoP.
        assert_eq!(
            polly_detect(m.function("sqrt_stencil").unwrap()).stencils(),
            0
        );
    }
}
