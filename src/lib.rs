//! # idiomatch — root facade
//!
//! Re-exports the workspace crates under one roof so that examples,
//! integration tests and downstream users can depend on a single package.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory of
//! this ASPLOS'18 reproduction.

pub use analysis;
pub use baselines;
pub use benchsuite;
pub use corpus;
pub use hetero;
pub use idiomatch_core as core;
pub use idioms;
pub use idl;
pub use interp;
pub use minicc;
pub use progen;
pub use solver;
pub use ssair;
pub use xform;
