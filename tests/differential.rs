//! Differential tests for the interned, skeleton-memoized solver core:
//! detection through the per-function loop-skeleton cache must be
//! byte-identical to the compatibility slow path (`skeleton_prepass:
//! false`, each idiom re-enumerating its own loop headers), across the
//! bundled benchmark suite and randomized progen programs — and the
//! budget/truncation semantics must survive with the cache active.

use idiomatch::idioms::{self, DetectOptions};
use proptest::prelude::*;

/// The compatibility slow path: identical constraint compilation and
/// solving, no skeleton prepass, no fingerprint pruning.
fn compat() -> DetectOptions {
    DetectOptions {
        skeleton_prepass: false,
        fingerprint_prepass: false,
        ..DetectOptions::default()
    }
}

/// The skeleton cache alone: fingerprint pruning off, so any divergence
/// between this and the default isolates the pruning pass.
fn no_fingerprint() -> DetectOptions {
    DetectOptions {
        fingerprint_prepass: false,
        ..DetectOptions::default()
    }
}

/// The documented per-function step ceiling of a detection pass (see
/// `idioms::detect_kinds_with`): per kind a seeded attempt plus a
/// fallback, plus the shared skeleton prepass.
fn step_bound(max_steps: u64) -> u64 {
    max_steps * (2 * idioms::IdiomKind::ALL.len() as u64 + idioms::skeleton_key_count() as u64)
}

#[test]
fn suite_detection_matches_the_compat_slow_path_byte_identically() {
    for b in idiomatch::benchsuite::all() {
        let m = idiomatch::minicc::compile(b.source, b.name).unwrap();
        for f in &m.functions {
            let fast = idioms::detect_with(f, &DetectOptions::default());
            let slow = idioms::detect_with(f, &compat());
            assert!(fast.complete && slow.complete, "{}::{}", b.name, f.name);
            assert_eq!(
                fast.instances, slow.instances,
                "{}::{}: skeleton cache changed detection output",
                b.name, f.name
            );
            assert_eq!(
                slow.skeleton_steps, 0,
                "slow path must not prepay skeletons"
            );
            assert_eq!(slow.pruned_pairs, 0, "compat path must not prune");
            let unpruned = idioms::detect_with(f, &no_fingerprint());
            assert_eq!(
                fast.instances, unpruned.instances,
                "{}::{}: fingerprint pruning changed detection output",
                b.name, f.name
            );
            assert!(
                fast.steps <= unpruned.steps,
                "{}::{}: pruning must never add solver work",
                b.name,
                f.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn progen_detection_is_identical_with_and_without_the_skeleton_cache(
        seed in 0u64..500
    ) {
        // Instance lists — kinds, anchors, regions AND full bindings —
        // must agree on every function of a randomized planted-idiom
        // program (near-misses and filler included).
        let spec = idiomatch::progen::generate(seed);
        let m = idiomatch::minicc::compile(&spec.render(), "prop").unwrap();
        for f in &m.functions {
            let fast = idioms::detect_with(f, &DetectOptions::default());
            let slow = idioms::detect_with(f, &compat());
            prop_assert!(fast.complete && slow.complete, "{}", f.name);
            prop_assert_eq!(&fast.instances, &slow.instances, "{}", f.name);
        }
    }

    #[test]
    fn progen_detection_is_identical_with_and_without_fingerprint_pruning(
        seed in 0u64..500
    ) {
        // Requirement signatures are *necessary* conditions: pruning an
        // idiom×function pair must never lose an instance. Both runs keep
        // the skeleton cache, so any divergence isolates the fingerprint
        // prepass; pruned kinds must also spend zero solver steps.
        let spec = idiomatch::progen::generate(seed);
        let m = idiomatch::minicc::compile(&spec.render(), "prop").unwrap();
        for f in &m.functions {
            let pruned = idioms::detect_with(f, &DetectOptions::default());
            let unpruned = idioms::detect_with(f, &no_fingerprint());
            prop_assert!(pruned.complete && unpruned.complete, "{}", f.name);
            prop_assert_eq!(&pruned.instances, &unpruned.instances, "{}", f.name);
            prop_assert!(pruned.steps <= unpruned.steps, "{}", f.name);
            prop_assert_eq!(unpruned.pruned_pairs, 0);
            let zero_step_kinds = pruned
                .steps_by_kind
                .values()
                .filter(|&&s| s == 0)
                .count() as u64;
            prop_assert!(
                pruned.pruned_pairs <= zero_step_kinds,
                "{}: every pruned kind must report zero steps",
                f.name
            );
        }
    }

    #[test]
    fn truncation_stays_bounded_and_recoverable_with_the_cache_active(
        seed in 0u64..200
    ) {
        // A starved budget must bound total work (skeleton prepass
        // included) and surface `complete == false` instead of silently
        // undercounting; restoring the budget must restore byte-identical
        // output on both paths.
        let spec = idiomatch::progen::generate(seed);
        let m = idiomatch::minicc::compile(&spec.render(), "prop").unwrap();
        let tiny = DetectOptions {
            max_steps: 50,
            ..DetectOptions::default()
        };
        for f in &m.functions {
            let starved = idioms::detect_with(f, &tiny);
            prop_assert!(
                starved.steps <= step_bound(tiny.max_steps),
                "{}: spent {} steps, bound {}",
                f.name,
                starved.steps,
                step_bound(tiny.max_steps)
            );
            let full_fast = idioms::detect_with(f, &DetectOptions::default());
            let full_slow = idioms::detect_with(f, &compat());
            prop_assert!(full_fast.complete && full_slow.complete);
            prop_assert_eq!(&full_fast.instances, &full_slow.instances);
            if !starved.complete {
                prop_assert!(
                    starved.instances.len() <= full_fast.instances.len(),
                    "{}: truncated undercount must not exceed the true population",
                    f.name
                );
            }
        }
    }
}
