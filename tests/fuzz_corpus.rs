//! Replays the checked-in regression corpus (`tests/corpus/*.c`): every
//! minimized fuzz reproducer must pass the full pipeline oracle with its
//! recorded expectations. A failure here means a bug the fuzzer once
//! found (and the corpus pinned) has come back. See
//! `tests/corpus/README.md` for the format and policy.

use idiomatch::progen;

#[test]
fn every_corpus_case_replays_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut cases = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .collect();
    entries.sort();
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        let case = progen::parse_case(&text)
            .unwrap_or_else(|e| panic!("{}: malformed corpus file: {e}", path.display()));
        let checked = progen::replay_case(&case).unwrap_or_else(|f| {
            panic!(
                "{}: pinned bug reappeared ({}): {f}",
                path.display(),
                case.note
            )
        });
        assert!(
            checked.validation.elements > 0,
            "{}: vacuous validation",
            path.display()
        );
        cases += 1;
    }
    assert!(cases >= 1, "the corpus always holds the format example");
}
