//! The IDL library lint gate, as a test: the shipped idiom library must
//! stay lint-clean (CI also runs the `lint` bin), and each lint rule is
//! exercised by a deliberately defective canary constraint so the gate
//! itself cannot silently rot into a no-op.

use idiomatch::analysis::{self, LintRule};
use idiomatch::idioms::{self, IdiomKind};
use idiomatch::idl;

/// Parses and compiles a one-off constraint named `name` from `src`.
fn compiled(src: &str, name: &str) -> idl::CompiledConstraint {
    let lib = idl::parse_library(src).expect("canary IDL must parse");
    idl::compile(&lib, name).expect("canary IDL must compile")
}

#[test]
fn shipped_idiom_library_is_lint_clean() {
    let compiled: Vec<&idl::CompiledConstraint> = IdiomKind::ALL
        .iter()
        .map(|&k| idioms::compiled(k))
        .collect();
    let lints = analysis::lint_constraints(&compiled);
    assert!(
        lints.is_empty(),
        "shipped library must be lint-clean, got:\n{}",
        lints
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn dead_variable_canary_fires() {
    // {b} shares no atom with the {a} cluster: it matches independently
    // and multiplies solutions without constraining them.
    let c = compiled(
        "Constraint DeadVar ( {a} is store instruction and {b} is load instruction ) End",
        "DeadVar",
    );
    let lints = analysis::lint_constraint(&c);
    assert!(
        lints.iter().any(|l| l.rule == LintRule::DeadVariable),
        "expected DeadVariable, got {lints:?}"
    );
}

#[test]
fn unsatisfiable_conjunction_canary_fires() {
    let c = compiled(
        "Constraint Unsat ( {a} is store instruction and {a} is load instruction ) End",
        "Unsat",
    );
    let lints = analysis::lint_constraint(&c);
    assert!(
        lints
            .iter()
            .any(|l| l.rule == LintRule::UnsatisfiableConjunction),
        "expected UnsatisfiableConjunction, got {lints:?}"
    );
}

#[test]
fn unreachable_or_branch_canary_fires() {
    // Second branch contradicts the conjunctive context it inherits.
    let c = compiled(
        "Constraint DeadBranch ( {a} is store instruction and \
         ( {a} is an instruction or {a} is load instruction ) ) End",
        "DeadBranch",
    );
    let lints = analysis::lint_constraint(&c);
    assert!(
        lints
            .iter()
            .any(|l| l.rule == LintRule::UnreachableOrBranch),
        "expected UnreachableOrBranch, got {lints:?}"
    );
}

#[test]
fn duplicate_or_branch_canary_fires() {
    let c = compiled(
        "Constraint Dup ( {a} is load instruction or {a} is load instruction ) End",
        "Dup",
    );
    let lints = analysis::lint_constraint(&c);
    assert!(
        lints.iter().any(|l| l.rule == LintRule::DuplicateOrBranch),
        "expected DuplicateOrBranch, got {lints:?}"
    );
}

#[test]
fn shadowed_constraint_canary_fires() {
    let src = "Constraint First ( {a} is store instruction ) End\n\
               Constraint Second ( {x} is store instruction ) End";
    let lib = idl::parse_library(src).unwrap();
    let a = idl::compile(&lib, "First").unwrap();
    let b = idl::compile(&lib, "Second").unwrap();
    let lints = analysis::lint_constraints(&[&a, &b]);
    assert!(
        lints
            .iter()
            .any(|l| l.rule == LintRule::ShadowedConstraint && l.constraint == "Second"),
        "expected ShadowedConstraint on Second, got {lints:?}"
    );
}
