//! Crash/timeout containment: a panicking module and a hanging module in
//! the middle of a shard must surface as `crash` / `timeout` records —
//! and must not take down, stall, or skip the healthy modules that share
//! the shard. Uses the documented fixture directives (`// corpus: panic`
//! and `// corpus: hang`) on real `.c` files in a directory corpus.

use idiomatch::corpus::{run, RunConfig, Source, Taxonomy, HANG_DIRECTIVE, PANIC_DIRECTIVE};

/// A real planted idiom so the healthy modules have something to detect.
const OK_SOURCE: &str = "\
// progen: case isolation-fixture
// progen:expect f0 Reduction
double f0(double* d0, double* d1, int n) {
    double s = 0.0;
    for (int i0 = 0; (i0 < n); i0 = (i0 + 1)) {
        s += (d0[i0] * d1[i0]);
    }
    return s;
}
";

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("idiomatch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn crash_and_timeout_are_contained_within_a_shard() {
    let corpus_dir = scratch("corpus_iso_src");
    std::fs::write(corpus_dir.join("a_ok.c"), OK_SOURCE).unwrap();
    std::fs::write(
        corpus_dir.join("b_crash.c"),
        format!("{PANIC_DIRECTIVE}\n{OK_SOURCE}"),
    )
    .unwrap();
    std::fs::write(
        corpus_dir.join("c_hang.c"),
        format!("{HANG_DIRECTIVE}\n{OK_SOURCE}"),
    )
    .unwrap();
    std::fs::write(corpus_dir.join("d_ok.c"), OK_SOURCE).unwrap();

    let state = scratch("corpus_iso_state");
    let mut cfg = RunConfig::new(Source::dir(&corpus_dir).expect("dir source"), &state);
    // One shard holds all four modules: containment must be per-module,
    // not per-shard.
    cfg.shard_size = 8;
    cfg.timeout = std::time::Duration::from_millis(250);
    let summary = run(&cfg).expect("run survives hostile modules");

    assert!(summary.complete);
    assert_eq!(summary.records.len(), 4);
    let by_id = |id: &str| {
        summary
            .records
            .iter()
            .find(|r| r.module == id)
            .unwrap_or_else(|| panic!("no record for {id}"))
    };

    let crash = by_id("b_crash.c");
    assert_eq!(crash.outcome, Taxonomy::Crash);
    assert!(
        crash.detail.contains("injected panic"),
        "crash detail carries the panic message, got {:?}",
        crash.detail
    );

    let hang = by_id("c_hang.c");
    assert_eq!(hang.outcome, Taxonomy::Timeout);
    assert!(hang.detail.contains("budget"), "got {:?}", hang.detail);

    // The healthy neighbours completed normally, detection intact.
    for id in ["a_ok.c", "d_ok.c"] {
        let r = by_id(id);
        assert_eq!(r.outcome, Taxonomy::Ok, "{id}: {}", r.detail);
        assert_eq!(r.planted, 1);
        assert_eq!(r.planted_hit, 1, "{id} lost its planted reduction");
        assert_eq!(r.false_positives, 0);
    }

    // The taxonomy census reports the mixed outcomes faithfully.
    let tax = summary.taxonomy();
    assert_eq!(tax[&Taxonomy::Ok], 2);
    assert_eq!(tax[&Taxonomy::Crash], 1);
    assert_eq!(tax[&Taxonomy::Timeout], 1);

    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&state);
}
