//! Suite-wide differential transformation test: every benchmark runs
//! detect → transform-all → execute (original vs transformed, simulated
//! vendor hosts registered) under several seeded input sets, with
//! element-wise bitwise validation on every program array plus the entry
//! return value. This is what backs the Figure-17/18 coverage numbers
//! with executed code instead of one-instance spot checks.

use idiomatch::benchsuite;
use idiomatch::core as pipeline;
use idiomatch::xform::Outcome;

#[test]
fn every_benchmark_transforms_fully_and_validates() {
    // ≥ 2 seeds: the canonical workload plus one randomized input vector
    // (the release-mode `table_replace` binary runs the full seed set).
    let seeds = &benchsuite::VALIDATION_SEEDS[..2];
    let mut detected = 0usize;
    let mut replaced = 0usize;
    for b in benchsuite::all() {
        let module = idiomatch::minicc::compile(b.source, b.name).unwrap();
        let report = pipeline::transform_and_validate_module(&module, b.entry, b.setup, seeds);
        let summary = report
            .validation
            .unwrap_or_else(|e| panic!("{}: validation failed: {e}", b.name));
        assert_eq!(summary.seeds, seeds.len(), "{}", b.name);
        assert!(
            summary.arrays > 0 && summary.elements > 0,
            "{}: validation must compare real arrays",
            b.name
        );
        for o in &report.xform.outcomes {
            detected += 1;
            match &o.outcome {
                Outcome::Replaced(rep) => {
                    replaced += 1;
                    // Generated device code is really linked in.
                    for g in &rep.generated {
                        assert!(
                            report.xform.module.function(g).is_some(),
                            "{}: generated function {g} missing",
                            b.name
                        );
                    }
                }
                Outcome::Shadowed { .. } | Outcome::Failed(_) => {}
            }
        }
    }
    // The paper's Figure-16 population: all 60 instances, all replaced.
    // A regression that starts skipping instances (new Unsupported paths,
    // overlap mis-resolution) must show up here, not silently shrink the
    // transformation coverage.
    assert_eq!(detected, 60, "idiom population drifted");
    assert_eq!(replaced, 60, "replacement coverage drifted");
}
