//! End-to-end check of the corpus batch service on a 200-program progen
//! corpus: every module must come back `ok` and validated, the planted /
//! false-positive totals summed from the per-module records must match
//! the ground truth recomputed independently from the generator, and the
//! JSONL records file must hold exactly one line per module.

use idiomatch::corpus::{run, RunConfig, Source, Taxonomy};
use idiomatch::progen;

const COUNT: usize = 200;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("idiomatch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn progen_corpus_runs_clean_with_full_recall() {
    let state = scratch("corpus_service");
    let cfg = RunConfig::new(Source::progen(COUNT, 0), &state);
    let summary = run(&cfg).expect("corpus run succeeds");

    assert!(summary.complete);
    assert_eq!(summary.records.len(), COUNT);
    assert_eq!(summary.analyzed, COUNT);

    // One JSONL line per module, in corpus order, no duplicates.
    let text = std::fs::read_to_string(&cfg.records_path).expect("records file exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), COUNT, "exactly one record per module");
    let mut ids: Vec<&str> = summary.records.iter().map(|r| r.module.as_str()).collect();
    ids.dedup();
    assert_eq!(ids.len(), COUNT, "no module analyzed twice");

    // Recompute the ground truth straight from the generator and compare
    // against the sums over per-module records.
    let mut want_planted = 0u64;
    let mut want_near_misses = 0u64;
    for seed in 0..COUNT as u64 {
        let spec = progen::generate(seed);
        want_planted += spec.expected().len() as u64;
        want_near_misses += spec.forbidden().len() as u64;
    }
    assert!(
        want_planted > 0 && want_near_misses > 0,
        "corpus is non-trivial"
    );

    let sum =
        |f: fn(&idiomatch::corpus::ModuleRecord) -> u64| summary.records.iter().map(f).sum::<u64>();
    assert_eq!(
        sum(|r| r.planted),
        want_planted,
        "planted totals match generator"
    );
    assert_eq!(sum(|r| r.planted_hit), want_planted, "full recall");
    assert_eq!(sum(|r| r.false_positives), 0, "no near-miss fired");
    assert!(sum(|r| r.detected) >= want_planted);
    assert!(sum(|r| r.replaced) > 0, "replacements happened");
    assert!(sum(|r| r.solve_steps) > 0);

    for r in &summary.records {
        assert_eq!(r.outcome, Taxonomy::Ok, "{}: {}", r.module, r.detail);
        assert!(r.validated, "{} skipped validation", r.module);
        assert!(r.latency_ms >= 0.0);
    }

    // The taxonomy census covers every variant, zeros included.
    let tax = summary.taxonomy();
    assert_eq!(tax.len(), Taxonomy::ALL.len());
    assert_eq!(tax[&Taxonomy::Ok], COUNT as u64);
    assert!(tax.values().sum::<u64>() == COUNT as u64);

    let _ = std::fs::remove_dir_all(&state);
}
