//! Checkpoint/resume fidelity: run the first K shards, drop the driver,
//! resume from the checkpoint, and require the merged JSONL records file
//! to be byte-identical to an uninterrupted run — with no module
//! analyzed twice. `record_latency: false` zeroes the only
//! non-deterministic field, so byte equality is the honest bar.

use idiomatch::corpus::{run, RunConfig, Source};

const COUNT: usize = 24;
const SHARD: usize = 4;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("idiomatch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(state: &std::path::Path) -> RunConfig {
    let mut cfg = RunConfig::new(Source::progen(COUNT, 0), state);
    cfg.shard_size = SHARD;
    cfg.record_latency = false;
    cfg
}

#[test]
fn interrupted_run_resumes_to_byte_identical_records() {
    // Reference: one uninterrupted run.
    let full_state = scratch("corpus_full");
    let full_cfg = config(&full_state);
    let full = run(&full_cfg).expect("uninterrupted run succeeds");
    assert!(full.complete);
    assert_eq!(full.records.len(), COUNT);
    let reference = std::fs::read(&full_cfg.records_path).expect("reference records");

    // Interrupted: stop after 2 of the 6 shards, dropping the driver.
    let state = scratch("corpus_resume");
    let mut first = config(&state);
    first.max_shards = Some(2);
    let partial = run(&first).expect("partial run succeeds");
    assert!(!partial.complete);
    assert_eq!(partial.flushed_shards, 2);
    assert_eq!(partial.analyzed, 2 * SHARD);
    assert!(
        first.checkpoint_path.exists(),
        "checkpoint survives the driver"
    );

    // Resume: a fresh driver picks up from the checkpoint.
    let mut second = config(&state);
    second.resume = true;
    let resumed = run(&second).expect("resumed run succeeds");
    assert!(resumed.complete);
    assert_eq!(resumed.records.len(), COUNT);
    assert_eq!(
        resumed.resumed_records,
        2 * SHARD,
        "checkpointed shards were skipped, not re-analyzed"
    );
    assert_eq!(resumed.analyzed, COUNT - 2 * SHARD);

    // No module analyzed twice across the two driver lifetimes.
    let mut ids: Vec<&str> = resumed.records.iter().map(|r| r.module.as_str()).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate module record after resume");

    // The bar: merged records byte-identical to the uninterrupted run.
    let merged = std::fs::read(&second.records_path).expect("merged records");
    assert_eq!(
        merged, reference,
        "resumed records file must be byte-identical to an uninterrupted run"
    );

    // The checkpoint is cleared once the run completes.
    assert!(
        !second.checkpoint_path.exists(),
        "stale checkpoint left behind"
    );

    let _ = std::fs::remove_dir_all(&full_state);
    let _ = std::fs::remove_dir_all(&state);
}
