//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;

/// Random small straight-line programs for printer/parser round-trips.
fn arb_program() -> impl Strategy<Value = String> {
    // ops chosen per step: add/mul on accumulated values
    proptest::collection::vec((0u8..3, any::<bool>()), 1..20).prop_map(|steps| {
        let mut body = String::new();
        let mut vals = vec!["%a".to_owned(), "%b".to_owned()];
        for (k, (op, pick)) in steps.iter().enumerate() {
            let x = vals[k % vals.len()].clone();
            let y = if *pick {
                vals[0].clone()
            } else {
                vals[vals.len() - 1].clone()
            };
            let mn = match op {
                0 => "add",
                1 => "mul",
                _ => "sub",
            };
            body.push_str(&format!("  %t{k} = {mn} i64 {x}, {y}\n"));
            vals.push(format!("%t{k}"));
        }
        format!(
            "define i64 @f(i64 %a, i64 %b) {{\nentry:\n{body}  ret i64 {}\n}}\n",
            vals.last().unwrap()
        )
    })
}

/// Random small minicc programs exercising the statement/expression forms
/// the frontend supports: loops, compound assignment, intrinsic calls,
/// ternaries, guards and array writes.
fn arb_minicc() -> impl Strategy<Value = String> {
    let stmt = (0u8..6, -4i32..5).prop_map(|(kind, c)| match kind {
        0 => format!("s = s + x[i] * {c}.0;"),
        1 => "s = fmax(s, fabs(x[i]));".to_owned(),
        2 => format!("y[i] = x[i] * {c}.0;"),
        3 => format!("s += x[i] > {c}.0 ? x[i] : 0.0;"),
        4 => format!("if (x[i] > {c}.0) {{ y[i] = x[i]; }}"),
        _ => format!("t = t + {c};"),
    });
    (proptest::collection::vec(stmt, 1..6), 0u8..3).prop_map(|(stmts, bound)| {
        let body = stmts.join("\n                ");
        let header = match bound {
            0 => "for (int i = 0; i < n; i++)",
            1 => "for (int i = 0; i < n - 1; i += 2)",
            _ => "for (int i = 1; n > i; i++)",
        };
        format!(
            "double f(double* x, double* y, int n) {{
            double s = 0.0;
            int t = 0;
            {header} {{
                {body}
            }}
            return s + (double)t;
        }}"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn printer_parser_fixpoint(src in arb_program()) {
        let f1 = idiomatch::ssair::parser::parse_function_text(&src).unwrap();
        let p1 = idiomatch::ssair::printer::print_function(&f1);
        let f2 = idiomatch::ssair::parser::parse_function_text(&p1).unwrap();
        let p2 = idiomatch::ssair::printer::print_function(&f2);
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn printer_parser_round_trip_preserves_module_equality(src in arb_program()) {
        // Module-level: parsing the printed form reproduces the module
        // structurally (same arenas, blocks and operands), not just the
        // same text.
        let m1 = idiomatch::ssair::parser::parse_module(&src).unwrap();
        let p1 = idiomatch::ssair::printer::print_module(&m1);
        let m2 = idiomatch::ssair::parser::parse_module(&p1).unwrap();
        prop_assert_eq!(&m1, &m2);
    }

    #[test]
    fn verify_accepts_everything_minicc_lowers(src in arb_minicc()) {
        // The frontend contract: both the raw lowering and the optimized
        // pipeline only ever produce verifier-clean modules.
        let raw = idiomatch::minicc::compile_unoptimized(&src, "prop").unwrap();
        prop_assert!(idiomatch::ssair::verify::verify_module(&raw).is_ok(),
            "unoptimized module fails verification");
        let opt = idiomatch::minicc::compile(&src, "prop").unwrap();
        prop_assert!(idiomatch::ssair::verify::verify_module(&opt).is_ok(),
            "optimized module fails verification");
    }

    #[test]
    fn interpreter_is_deterministic(src in arb_program(), a in -100i64..100, b in -100i64..100) {
        let m = idiomatch::ssair::parser::parse_module(&src).unwrap();
        use idiomatch::interp::{Machine, Value};
        let mut vm1 = Machine::new(&m);
        let mut vm2 = Machine::new(&m);
        let r1 = vm1.run("f", &[Value::I(a), Value::I(b)]).unwrap();
        let r2 = vm2.run("f", &[Value::I(a), Value::I(b)]).unwrap();
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn reduction_replacement_matches_for_random_inputs(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..40)
    ) {
        let src = "double s(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) a += x[i] * 0.5; return a; }";
        let module = idiomatch::minicc::compile(src, "prop").unwrap();
        let insts = idiomatch::idioms::detect(module.function("s").unwrap());
        let red = insts.iter().find(|i| i.kind == idiomatch::idioms::IdiomKind::Reduction).unwrap();
        let mut transformed = module.clone();
        idiomatch::xform::apply_replacement(&mut transformed, red, 0).unwrap();
        use idiomatch::interp::{Machine, Value};
        let run = |m: &idiomatch::ssair::Module| {
            let mut vm = Machine::new(m);
            let p = vm.mem.alloc_f64_slice(&xs);
            vm.run("s", &[Value::P(p), Value::I(xs.len() as i64)]).unwrap().as_f()
        };
        prop_assert_eq!(run(&module), run(&transformed));
    }

    #[test]
    fn gemm_host_matches_oracle(
        n in 1usize..6,
        seed in 0u64..1000
    ) {
        // Random matrices through the simulated cuBLAS entry point vs a
        // naive oracle.
        let mk = |s: u64, len: usize| -> Vec<f64> {
            (0..len).map(|i| (((i as u64 + s) * 2654435761) % 17) as f64 - 8.0).collect()
        };
        let a = mk(seed, n * n);
        let b = mk(seed + 1, n * n);
        let text = "define void @run(double* %a, double* %b, double* %c, i64 %n) {\nentry:\n  call void @gemm_f64(double* %a, double* %b, double* %c, i64 %n, i64 %n, i64 %n, i64 %n, i64 %n, i64 %n, i64 0, i64 0, i64 0, double 0.0)\n  ret void\n}\n";
        let m = idiomatch::ssair::parser::parse_module(text).unwrap();
        use idiomatch::interp::{Machine, Value};
        let mut vm = Machine::new(&m);
        idiomatch::hetero::hosts::register_all(&mut vm);
        let ap = vm.mem.alloc_f64_slice(&a);
        let bp = vm.mem.alloc_f64_slice(&b);
        let cp = vm.mem.alloc_f64_slice(&vec![0.0; n * n]);
        vm.run("run", &[Value::P(ap), Value::P(bp), Value::P(cp), Value::I(n as i64)]).unwrap();
        let got = vm.mem.read_f64_slice(cp, n * n);
        // addr(col,row) with row_scaled=0: idx = col*n + row.
        for i0 in 0..n {
            for i1 in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += a[i0 * n + k] * b[i1 * n + k];
                }
                prop_assert!((got[i0 * n + i1] - acc).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transform_module_overlap_resolution_is_input_order_independent(
        progen_seed in 0u64..400,
        shuffle_seed in proptest::arbitrary::any::<u64>()
    ) {
        // Shuffling the detected-instance input order must not change
        // the transformation: byte-identical transformed module, and the
        // same per-instance Replaced/Shadowed/Failed verdicts (shadow
        // edges compared by the winning instance's identity, since
        // `Shadowed { by }` indexes into the input order).
        use idiomatch::xform::{transform_instances, ModuleXform, Outcome};
        let spec = idiomatch::progen::generate(progen_seed);
        let module = idiomatch::minicc::compile(&spec.render(), "prop").unwrap();
        let instances = idiomatch::idioms::detect_module(&module);
        // Every progen program plants at least one idiom, so the shuffle
        // always has material to permute.
        prop_assert!(!instances.is_empty());

        let mut shuffled = instances.clone();
        idiomatch::progen::Rng::new(shuffle_seed).shuffle(&mut shuffled);

        // One comparable verdict per instance, keyed by instance
        // identity and independent of input position.
        let describe = |xf: &ModuleXform| -> Vec<String> {
            let mut rows: Vec<String> = xf
                .outcomes
                .iter()
                .map(|o| {
                    let inst = &o.instance;
                    let verdict = match &o.outcome {
                        Outcome::Replaced(r) => format!("replaced:{}", r.kind.constraint_name()),
                        Outcome::Shadowed { by } => {
                            let w = &xf.outcomes[*by].instance;
                            format!("shadowed-by:{}:{:?}:{}", w.function, w.kind, w.anchor)
                        }
                        Outcome::Failed(e) => format!("failed:{e}"),
                    };
                    format!("{}:{:?}:{}:{verdict}", inst.function, inst.kind, inst.anchor)
                })
                .collect();
            rows.sort();
            rows
        };
        let a = transform_instances(&module, instances);
        let b = transform_instances(&module, shuffled);
        prop_assert_eq!(
            idiomatch::ssair::printer::print_module(&a.module),
            idiomatch::ssair::printer::print_module(&b.module),
            "transformed modules must be byte-identical"
        );
        prop_assert_eq!(describe(&a), describe(&b));
    }

    #[test]
    fn solver_solutions_always_satisfy_the_formula(
        ops in proptest::collection::vec(0u8..2, 1..12)
    ) {
        // Soundness: every factorization the solver reports really has a
        // shared factor.
        let mut body = String::new();
        let mut names = vec!["%a".to_owned(), "%b".to_owned(), "%c".to_owned()];
        for (k, op) in ops.iter().enumerate() {
            let x = names[k % names.len()].clone();
            let y = names[(k + 1) % names.len()].clone();
            let mn = if *op == 0 { "mul" } else { "add" };
            body.push_str(&format!("  %t{k} = {mn} i32 {x}, {y}\n"));
            names.push(format!("%t{k}"));
        }
        let src = format!(
            "define i32 @f(i32 %a, i32 %b, i32 %c) {{\nentry:\n{body}  ret i32 {}\n}}\n",
            names.last().unwrap()
        );
        let f = idiomatch::ssair::parser::parse_function_text(&src).unwrap();
        let lib = idiomatch::idl::parse_library(
            "Constraint F ( {s} is add instruction and {l} is first argument of {s} and {l} is mul instruction and {r} is second argument of {s} and {r} is mul instruction and ( {x} is first argument of {l} or {x} is second argument of {l} ) and ( {x} is first argument of {r} or {x} is second argument of {r} ) ) End",
        ).unwrap();
        let c = idiomatch::idl::compile(&lib, "F").unwrap();
        let solver = idiomatch::solver::Solver::new(&f);
        for sol in solver.solve(&c, &idiomatch::solver::SolveOptions::default()) {
            let s = sol.bindings["s"];
            let l = sol.bindings["l"];
            let r = sol.bindings["r"];
            let x = sol.bindings["x"];
            let i_s = f.instr(s).unwrap();
            prop_assert_eq!(i_s.opcode, idiomatch::ssair::Opcode::Add);
            prop_assert_eq!(i_s.operands[0], l);
            prop_assert_eq!(i_s.operands[1], r);
            prop_assert!(f.instr(l).unwrap().operands.contains(&x));
            prop_assert!(f.instr(r).unwrap().operands.contains(&x));
        }
    }
}
