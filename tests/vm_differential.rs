//! Differential suite for the two executor tiers: the tree-walking
//! `Machine` oracle and the bytecode `Vm` must agree **bit-for-bit** —
//! return value, every byte of final memory, and the step counter — on
//! every bundled benchmark under multiple input seeds, on randomized
//! progen programs, and on error paths (same `ExecError` message at the
//! same step count, step-limit exhaustion included).

use idiomatch::benchsuite;
use idiomatch::hetero::hosts::register_all;
use idiomatch::interp::{compile_module, Machine, Memory, Value, Vm};
use proptest::prelude::*;

/// Everything one execution produces, in comparable form.
#[derive(Debug, Clone, PartialEq)]
struct Trace {
    /// `Ok(bitwise value)` or `Err(full error message)`.
    result: Result<(&'static str, u64), String>,
    /// The step counter after the run (errors included).
    steps: u64,
    /// Every byte of final memory.
    mem: Vec<u8>,
}

fn value_bits(v: Value) -> (&'static str, u64) {
    match v {
        Value::I(x) => ("I", x as u64),
        Value::F(x) => ("F", x.to_bits()),
        Value::P(x) => ("P", x),
    }
}

/// One walker run with the vendor hosts registered.
fn walk(
    m: &ssair::Module,
    entry: &str,
    setup: &dyn Fn(&mut Memory, u64) -> Vec<Value>,
    seed: u64,
    max_steps: Option<u64>,
) -> Trace {
    let mut vm = Machine::new(m);
    register_all(&mut vm);
    if let Some(ms) = max_steps {
        vm.max_steps = ms;
    }
    let args = setup(&mut vm.mem, seed);
    let result = vm
        .run(entry, &args)
        .map(value_bits)
        .map_err(|e| e.to_string());
    Trace {
        result,
        steps: vm.steps(),
        mem: vm.mem.bytes().to_vec(),
    }
}

/// One bytecode-VM run over a pre-compiled module, same hosts.
fn exec(
    code: &idiomatch::interp::CompiledModule<'_>,
    entry: &str,
    setup: &dyn Fn(&mut Memory, u64) -> Vec<Value>,
    seed: u64,
    max_steps: Option<u64>,
) -> Trace {
    let mut vm = Vm::new(code);
    register_all(&mut vm);
    if let Some(ms) = max_steps {
        vm.max_steps = ms;
    }
    let args = setup(&mut vm.mem, seed);
    let result = vm
        .run(entry, &args)
        .map(value_bits)
        .map_err(|e| e.to_string());
    Trace {
        result,
        steps: vm.steps(),
        mem: vm.mem.bytes().to_vec(),
    }
}

/// Asserts walker ≡ VM on one module/entry/seed, optionally under a step
/// budget. Returns the shared trace for further checks.
fn assert_parity(
    m: &ssair::Module,
    entry: &str,
    setup: &dyn Fn(&mut Memory, u64) -> Vec<Value>,
    seed: u64,
    max_steps: Option<u64>,
    ctx: &str,
) -> Trace {
    let code = compile_module(m);
    let w = walk(m, entry, setup, seed, max_steps);
    let v = exec(&code, entry, setup, seed, max_steps);
    assert_eq!(w.result, v.result, "{ctx}: result diverged");
    assert_eq!(w.steps, v.steps, "{ctx}: step counter diverged");
    assert_eq!(w.mem, v.mem, "{ctx}: final memory diverged");
    w
}

/// Every bundled benchmark, under every validation seed: identical
/// return bits, identical step counts, identical memory images.
#[test]
fn all_benchmarks_agree_bitwise_across_seeds() {
    for b in benchsuite::all() {
        let m = idiomatch::minicc::compile(b.source, b.name).unwrap();
        let code = compile_module(&m);
        assert!(
            code.compiled_count() > 0,
            "{}: nothing was eligible for bytecode",
            b.name
        );
        for &seed in &benchsuite::VALIDATION_SEEDS {
            let t = assert_parity(
                &m,
                b.entry,
                &|mem, s| (b.setup)(mem, s),
                seed,
                None,
                &format!("{} seed {seed:#x}", b.name),
            );
            assert!(t.result.is_ok(), "{}: benchmark must execute", b.name);
        }
    }
}

/// The same suite run through the *transformed* modules (vendor calls
/// inserted), exercising the host-dispatch path on both tiers.
#[test]
fn transformed_benchmarks_agree_bitwise() {
    for b in benchsuite::all() {
        let m = idiomatch::minicc::compile(b.source, b.name).unwrap();
        let xf = idiomatch::xform::transform_module(&m);
        for &seed in &benchsuite::VALIDATION_SEEDS[..2] {
            assert_parity(
                &xf.module,
                b.entry,
                &|mem, s| (b.setup)(mem, s),
                seed,
                None,
                &format!("{} (transformed) seed {seed:#x}", b.name),
            );
        }
    }
}

/// Error paths must agree exactly: same message, same step count, same
/// partial memory effects.
#[test]
fn error_paths_agree_bitwise() {
    let cases: [(&str, &str, Vec<Value>); 3] = [
        (
            "int div(int n) { return 100 / n; }",
            "div",
            vec![Value::I(0)],
        ),
        ("int rem(int n) { return 7 % n; }", "rem", vec![Value::I(0)]),
        (
            "double deref(double* p, int i) { return p[i]; }",
            "deref",
            vec![Value::P(8), Value::I(1 << 20)],
        ),
    ];
    for (src, entry, args) in cases {
        let m = idiomatch::minicc::compile(src, entry).unwrap();
        let t = assert_parity(
            &m,
            entry,
            &|_, _| args.clone(),
            0,
            None,
            &format!("error case {entry}"),
        );
        assert!(t.result.is_err(), "{entry}: case must fail");
    }
    // Unknown function name: identical error string on both tiers.
    let m = idiomatch::minicc::compile("int id(int x) { return x; }", "id").unwrap();
    let t = assert_parity(&m, "nope", &|_, _| vec![], 0, None, "unknown entry");
    assert!(t.result.is_err());
}

/// Step-limit exhaustion is bitwise too: sweep budgets across a loop so
/// the limit lands on every instruction class (phi updates included) and
/// demand identical cutoff messages and counters.
#[test]
fn step_limit_cutoffs_agree_at_every_budget() {
    let src = "double sum(double* x, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s += x[i];
        return s;
    }";
    let m = idiomatch::minicc::compile(src, "sum").unwrap();
    let setup = |mem: &mut Memory, _seed: u64| {
        let p = mem.alloc_f64_slice(&[1.0, 2.0, 3.0, 4.0]);
        vec![Value::P(p), Value::I(4)]
    };
    let full = assert_parity(&m, "sum", &setup, 0, None, "sum unlimited");
    let total = full.steps;
    assert!(total > 10, "loop must take a nontrivial number of steps");
    let mut saw_cutoff = false;
    for budget in 1..=total {
        let t = assert_parity(
            &m,
            "sum",
            &setup,
            0,
            Some(budget),
            &format!("sum budget {budget}"),
        );
        if budget < total {
            assert!(t.result.is_err(), "budget {budget} of {total} must cut off");
            saw_cutoff = true;
        } else {
            assert_eq!(t.result, full.result, "exact budget must finish");
        }
    }
    assert!(saw_cutoff);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Randomized planted-idiom programs (near-misses and filler
    /// included) execute identically on both tiers under every fuzz
    /// seed — original and transformed module alike.
    #[test]
    fn progen_programs_agree_bitwise(seed in 0u64..300) {
        let spec = idiomatch::progen::generate(seed);
        let m = idiomatch::minicc::compile(&spec.render(), "prop").unwrap();
        let xf = idiomatch::xform::transform_module(&m);
        for &input in &idiomatch::progen::FUZZ_SEEDS {
            let setup = |mem: &mut Memory, s: u64| idiomatch::progen::setup(mem, s);
            assert_parity(
                &m,
                idiomatch::progen::Spec::ENTRY,
                &setup,
                input,
                None,
                &format!("progen {seed} input {input:#x}"),
            );
            assert_parity(
                &xf.module,
                idiomatch::progen::Spec::ENTRY,
                &setup,
                input,
                None,
                &format!("progen {seed} (transformed) input {input:#x}"),
            );
        }
    }
}
