//! Cross-crate integration tests: the full Figure-1 pipeline from C source
//! to validated, API-calling executables.

use idiomatch::core as pipeline;
use idiomatch::idioms::IdiomKind;
use idiomatch::interp::{Machine, Value};

#[test]
fn every_idiom_kind_round_trips_end_to_end() {
    struct Case {
        src: &'static str,
        entry: &'static str,
        setup: idiomatch::core::SetupFn,
        kind: IdiomKind,
    }
    let cases = [
        Case {
            src: "double s(double* x, int n) { double a = 0.0; for (int i = 0; i < n; i++) a += x[i]; return a; }",
            entry: "s",
            setup: |m, seed| {
                let x = m.alloc_f64_slice(&[1.0, -2.0, 3.5, 0.25 + seed as f64]);
                vec![Value::P(x), Value::I(4)]
            },
            kind: IdiomKind::Reduction,
        },
        Case {
            src: "void h(int* k, int* b, int n) { for (int i = 0; i < n; i++) b[k[i]] = b[k[i]] + 1; }",
            entry: "h",
            setup: |m, seed| {
                let k = m.alloc_i32_slice(&[0, 1, 1, 3, (seed % 4) as i32, 1]);
                let b = m.alloc_i32_slice(&[0; 4]);
                vec![Value::P(k), Value::P(b), Value::I(6)]
            },
            kind: IdiomKind::Histogram,
        },
        Case {
            src: "void st(double* o, double* a, int n) { for (int i = 1; i < n - 1; i++) o[i] = a[i-1] + 2.0*a[i] + a[i+1]; }",
            entry: "st",
            setup: |m, seed| {
                let o = m.alloc_f64_slice(&[0.0; 8]);
                let a = m.alloc_f64_slice(&[1.0 + seed as f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
                vec![Value::P(o), Value::P(a), Value::I(8)]
            },
            kind: IdiomKind::Stencil1D,
        },
    ];
    for c in cases {
        let module = idiomatch::minicc::compile(c.src, "case").expect("compiles");
        let (_, rep) = pipeline::transform_and_validate(&module, c.entry, c.setup, c.kind)
            .unwrap_or_else(|e| panic!("{:?}: {e}", c.kind));
        assert_eq!(rep.kind, c.kind);
    }
}

#[test]
fn figure_8_both_forms_are_the_same_idiom() {
    // §4.3's semantic-equivalence claim: two syntactically distinct GEMMs
    // both match and can both be replaced with the same API call.
    let form1 = "void g1(double* A, double* B, double* C, int m, int n, int k) {
        for (int mm = 0; mm < m; mm++)
            for (int nn = 0; nn < n; nn++) {
                double c = 0.0;
                for (int i = 0; i < k; i++) c += A[mm + i * m] * B[nn + i * n];
                C[mm + nn * m] = c;
            }
    }";
    let form2 = "void g2(double* M1, double* M2, double* M3, int n) {
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
                M3[i*n+j] = 0.0;
                for (int k = 0; k < n; k++) M3[i*n+j] += M1[i*n+k] * M2[k*n+j];
            }
    }";
    for (src, fname) in [(form1, "g1"), (form2, "g2")] {
        let m = idiomatch::minicc::compile(src, fname).unwrap();
        let insts = idiomatch::idioms::detect(m.function(fname).unwrap());
        assert!(
            insts.iter().any(|i| i.kind == IdiomKind::Gemm),
            "{fname} must match GEMM, got {:?}",
            insts.iter().map(|i| i.kind).collect::<Vec<_>>()
        );
    }
}

#[test]
fn transformed_spmv_runs_on_the_simulated_library() {
    let b = idiomatch::benchsuite::all()
        .into_iter()
        .find(|b| b.name == "spmv")
        .unwrap();
    let module = idiomatch::minicc::compile(b.source, b.name).unwrap();
    let (transformed, rep) =
        pipeline::transform_and_validate(&module, b.entry, b.setup, IdiomKind::Spmv)
            .expect("validates");
    assert_eq!(rep.callee, "csrmv_f64");
    // And it actually executes through the registered host.
    let mut vm = Machine::new(&transformed);
    idiomatch::hetero::hosts::register_all(&mut vm);
    let args = (b.setup)(&mut vm.mem, idiomatch::benchsuite::CANONICAL_SEED);
    vm.run(b.entry, &args).expect("runs");
}

#[test]
fn detection_is_deterministic() {
    let b = idiomatch::benchsuite::all()
        .into_iter()
        .find(|b| b.name == "CG")
        .unwrap();
    let m = idiomatch::minicc::compile(b.source, b.name).unwrap();
    let run = || {
        let mut v = Vec::new();
        for f in &m.functions {
            for i in idiomatch::idioms::detect(f) {
                v.push((i.function.clone(), i.kind, i.anchor));
            }
        }
        v
    };
    assert_eq!(run(), run());
}
