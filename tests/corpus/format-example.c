// progen: case format-example (progen corpus v1)
// progen:expect f0 Reduction
// progen:forbid f1 Stencil1D
// progen:note corpus format example: one planted dot-product reduction, one in-place-stencil near-miss
double f0(double* d0, double* d1, int n) {
    double s = 0.0;
    for (int i0 = 0; (i0 < n); i0 = (i0 + 1)) {
        s += (d0[i0] * d1[i0]);
    }
    return s;
}

void f1(double* o0, int n) {
    for (int i0 = 1; (i0 < (n - 1)); i0 = (i0 + 1)) {
        o0[i0] = ((0.5 * o0[(i0 - 1)]) + (0.5 * o0[(i0 + 1)]));
    }
}

double fz_entry(double* d0, double* d1, double* d2, double* d3, double* o0, double* o1, double* g0, double* go, double* m0, double* m1, double* mo, int* k0, int* bi, double* bf, double* cv, int* cr, int* cc, double* x0, double* y0, int n, int g, int dim, int rows, int nb) {
    double total = 0.0;
    total = (total + f0(d0, d1, n));
    f1(o0, n);
    return total;
}
