//! Offline stand-in for the real `serde_derive` crate.
//!
//! The build environment has no network access, so instead of the real
//! serde derive machinery this emits a marker-trait impl. The derives
//! accept the same invocation sites (`#[derive(Serialize)]` /
//! `#[derive(Deserialize)]`) and produce `impl serde::Serialize` /
//! `impl serde::Deserialize` for the annotated type, which is all the
//! workspace needs until real serialization is wired up.

use proc_macro::TokenStream;

/// Extracts the identifier of the type a `derive` was attached to.
///
/// Walks the token stream past attributes, doc comments, visibility and
/// generics-free struct/enum/union keywords to the type name.
fn type_ident(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let proc_macro::TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(proc_macro::TokenTree::Ident(name)) = tokens.next() {
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match type_ident(&input) {
        // Generic types would need where-clauses; none of the workspace
        // types that derive serde traits are generic.
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// Stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// Stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
