//! Offline stand-in for the real `serde` crate.
//!
//! The build environment has no network access; the workspace only uses
//! serde as `#[derive(Serialize)]` markers today, so this exposes the
//! trait names and re-exports the stand-in derives. Swap this vendor
//! crate for the real dependency when a registry is available — call
//! sites will not need to change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided — the
/// stand-in never borrows from an input).
pub trait Deserialize {}
