//! Offline stand-in for the real `criterion` crate.
//!
//! The build environment has no network access, so this vendors a
//! minimal wall-clock bench harness with the criterion surface the
//! workspace uses: `Criterion::default().sample_size(n)`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros (with `harness = false` in the bench
//! target, exactly like real criterion). No statistics beyond
//! min/mean — this exists so benches compile, run and print numbers,
//! not to replace criterion's analysis.

use std::time::Instant;

pub use std::hint::black_box;

/// Bench driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each bench takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
        };
        // One untimed warmup pass, then the timed samples.
        f(&mut b);
        b.samples_ns.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples_ns.len().max(1) as f64;
        let mean = b.samples_ns.iter().sum::<f64>() / n;
        let min = b.samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "bench: {name:<40} mean {:>12} min {:>12}",
            fmt_ns(mean),
            fmt_ns(min)
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Per-bench timing handle (stand-in for `criterion::Bencher`).
pub struct Bencher {
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times one sample of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let t0 = Instant::now();
        black_box(routine());
        self.samples_ns.push(t0.elapsed().as_secs_f64() * 1e9);
    }
}

/// Declares a bench group (stand-in for `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point (stand-in for `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
