//! Offline stand-in for the real `proptest` crate.
//!
//! The build environment has no network access, so this vendors a small,
//! deterministic property-testing core with the subset of the proptest
//! API the workspace tests use: `Strategy` + `prop_map`, numeric range
//! and tuple strategies, `any::<T>()`, `collection::vec`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! * no shrinking — a failing case reports its case index and inputs via
//!   the panic message of the underlying assert;
//! * generation is deterministic per test (seeded from the test's module
//!   path and name), so failures reproduce exactly on re-run.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical "anything" strategy ([`crate::arbitrary::any`]).
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`crate::arbitrary::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Any<T> {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};

    /// The canonical strategy for `T` (stand-in for `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic xorshift64* generator seeded per test.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test identifier string, so the
        /// same test always sees the same case sequence.
        #[must_use]
        pub fn deterministic(test_id: &str) -> TestRng {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV offset basis
            for b in test_id.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests (stand-in for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    // Inputs are moved into the case body like in real
                    // proptest; a failing assert aborts the whole test.
                    (|| { $body })();
                }
            }
        )*
    };
}

/// Stand-in for `proptest::prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Stand-in for `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Stand-in for `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
