//! Quickstart: the paper's Figure 1 workflow on one function.
//!
//! Compile C to SSA IR, detect idioms with the IDL library, replace the
//! match with a heterogeneous API call, and run both versions.
//!
//!     cargo run --example quickstart

use idiomatch::core as pipeline;
use idiomatch::interp::{Machine, Value};

fn main() {
    let source = "double dot(double* x, double* y, int n) {
        double acc = 0.0;
        for (int i = 0; i < n; i++) acc += x[i] * y[i];
        return acc;
    }";
    // 1. clang's role: C -> optimized SSA IR.
    let module = idiomatch::minicc::compile(source, "quickstart").expect("compiles");
    println!("== optimized IR ==\n{}", module.function("dot").unwrap());

    // 2. Idiom detection (IDL + constraint solver).
    let f = module.function("dot").unwrap();
    let instances = idiomatch::idioms::detect(f);
    for inst in &instances {
        println!(
            "detected {:?} anchored at {}",
            inst.kind,
            f.display_name(inst.anchor)
        );
        for (name, v) in inst.bindings.iter().take(8) {
            println!("   {name} = {}", f.display_name(*v));
        }
        println!("   ... ({} bindings total)", inst.bindings.len());
    }

    // 3. Replacement: outline the reduction operator, generate device
    //    code (the Lift path), link it in.
    let (transformed, rep) = pipeline::transform_and_validate(
        &module,
        "dot",
        |mem, seed| {
            let x = mem.alloc_f64_slice(&[1.0 + seed as f64, 2.0, 3.0, 4.0]);
            let y = mem.alloc_f64_slice(&[0.5, 0.5, 0.5, 0.5]);
            vec![Value::P(x), Value::P(y), Value::I(4)]
        },
        idiomatch::idioms::IdiomKind::Reduction,
    )
    .expect("replacement validates");
    println!("\n== replaced with a call to @{} ==", rep.callee);
    println!("{}", transformed.function("dot").unwrap());

    // 4. Run the transformed program.
    let mut vm = Machine::new(&transformed);
    idiomatch::hetero::hosts::register_all(&mut vm);
    let x = vm.mem.alloc_f64_slice(&[1.0, 2.0, 3.0, 4.0]);
    let y = vm.mem.alloc_f64_slice(&[2.0, 2.0, 2.0, 2.0]);
    let r = vm
        .run("dot", &[Value::P(x), Value::P(y), Value::I(4)])
        .unwrap();
    println!("dot([1,2,3,4],[2,2,2,2]) = {:?}  (expected 20)", r);
}
