//! Mini evaluation over the full 21-benchmark suite: detection counts
//! (Figure 16 / Table 1), coverage (Figure 17) and the best platform per
//! covered benchmark (Figure 18) in one pass.
//!
//!     cargo run --release --example suite_report

fn main() {
    let mut total = 0;
    println!(
        "{:<8} {:>7} {:>9}  best platform",
        "bench", "idioms", "coverage"
    );
    for b in idiomatch::benchsuite::all() {
        let a = idiomatch::core::analyze(&b);
        let n: usize = a.by_class.values().sum();
        total += n;
        let best = [
            idiomatch::hetero::Platform::Cpu,
            idiomatch::hetero::Platform::IGpu,
            idiomatch::hetero::Platform::Gpu,
        ]
        .iter()
        .filter_map(|&p| idiomatch::core::speedup_on(&a, p, a.lazy).map(|(api, s)| (p, api, s)))
        .max_by(|x, y| x.2.total_cmp(&y.2));
        match best {
            Some((p, api, s)) if a.covered => println!(
                "{:<8} {:>7} {:>8.1}%  {:.2}x on {} via {}",
                a.name,
                n,
                100.0 * a.coverage,
                s,
                p.label(),
                api.label()
            ),
            _ => println!(
                "{:<8} {:>7} {:>8.1}%  (idioms not worth offloading)",
                a.name,
                n,
                100.0 * a.coverage
            ),
        }
    }
    println!("\ntotal idiom instances: {total} (paper: 60)");
    assert_eq!(total, 60);
}
