//! Writing a new idiom in IDL without touching the compiler — the paper's
//! §2.2 worked example (Figures 2 and 3): the factorization opportunity
//! (x*y)+(x*z).
//!
//!     cargo run --example custom_idiom

use idiomatch::solver::{SolveOptions, Solver};

const FACTORIZATION_IDL: &str = r#"
Constraint FactorizationOpportunity
( {sum} is add instruction and
  {left_addend} is first argument of {sum} and
  {left_addend} is mul instruction and
  {right_addend} is second argument of {sum} and
  {right_addend} is mul instruction and
  ( {factor} is first argument of {left_addend} or
    {factor} is second argument of {left_addend}) and
  ( {factor} is first argument of {right_addend} or
    {factor} is second argument of {right_addend}))
End
"#;

fn main() {
    // The paper's Figure 3 input program.
    let module = idiomatch::minicc::compile(
        "int example(int a, int b, int c) { int d = a; return (a*b) + (c*d); }",
        "fig3",
    )
    .expect("compiles");
    let f = module.function("example").unwrap();
    println!("== LLVM-style IR (Figure 3) ==\n{f}");

    let lib = idiomatch::idl::parse_library(FACTORIZATION_IDL).expect("IDL parses");
    let compiled = idiomatch::idl::compile(&lib, "FactorizationOpportunity").expect("compiles");
    println!("constraint variables: {:?}", compiled.variable_names());

    let solver = Solver::new(f);
    let solutions = solver.solve(&compiled, &SolveOptions::default());
    println!("\n== detected factorization opportunities ==");
    for sol in &solutions {
        println!("{{");
        for (name, v) in &sol.bindings {
            println!("  {name:>14} : {}", f.display_name(*v));
        }
        println!("}}");
    }
    assert_eq!(solutions.len(), 1, "exactly one opportunity, factor = %a");
}
