//! The paper's running example (§2.3, Figures 4-6): the NAS CG sparse
//! matrix-vector kernel is detected as SPMV and replaced with a
//! cuSPARSE-style csrmv call.
//!
//!     cargo run --example sparse_offload

use idiomatch::core as pipeline;
use idiomatch::idioms::IdiomKind;
use idiomatch::interp::{Machine, Value};

const CG_KERNEL: &str = "
void spmv(double* a, int* rowstr, int* colidx, double* z, double* r, int m) {
    for (int j = 0; j < m; j++) {
        double d = 0.0;
        for (int k = rowstr[j]; k < rowstr[j+1]; k++)
            d = d + a[k] * z[colidx[k]];
        r[j] = d;
    }
}";

fn setup(mem: &mut idiomatch::interp::Memory, seed: u64) -> Vec<Value> {
    let rowstr = mem.alloc_i32_slice(&[0, 2, 4, 5, 7]);
    let colidx = mem.alloc_i32_slice(&[0, 1, 1, 2, 3, 0, 3]);
    let vals = mem.alloc_f64_slice(&[1.0 + seed as f64, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    let z = mem.alloc_f64_slice(&[1.5, -2.0, 0.5, 3.0]);
    let r = mem.alloc_f64_slice(&[0.0; 4]);
    vec![
        Value::P(vals),
        Value::P(rowstr),
        Value::P(colidx),
        Value::P(z),
        Value::P(r),
        Value::I(4),
    ]
}

fn main() {
    let module = idiomatch::minicc::compile(CG_KERNEL, "cg").expect("compiles");
    let f = module.function("spmv").unwrap();
    let insts = idiomatch::idioms::detect(f);
    let spmv = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Spmv)
        .expect("SPMV detected");
    println!("== Figure 5: constraint solution ==");
    for var in [
        "iterator",
        "inner.iter_begin",
        "inner.iter_end",
        "inner.iterator",
        "idx_read.value",
        "indir_read.value",
        "output.address",
        "idx_read.base_pointer",
        "seq_read.base_pointer",
        "indir_read.base_pointer",
    ] {
        println!("  {var:>24} = {}", f.display_name(spmv.value(var).unwrap()));
    }

    let (transformed, rep) =
        pipeline::transform_and_validate(&module, "spmv", setup, IdiomKind::Spmv)
            .expect("replacement validates");
    println!("\n== Figure 6: generated call ==  @{}", rep.callee);
    println!("{}", transformed.function("spmv").unwrap());

    let mut vm = Machine::new(&transformed);
    idiomatch::hetero::hosts::register_all(&mut vm);
    let args = setup(&mut vm.mem, idiomatch::benchsuite::CANONICAL_SEED);
    let rp = args[4].as_p();
    vm.run("spmv", &args).unwrap();
    println!("r = {:?}", vm.mem.read_f64_slice(rp, 4));
}
