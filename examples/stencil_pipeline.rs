//! The DSL path (§6.2): a 2D Jacobi stencil is detected, its kernel is
//! outlined, Halide/Lift surface programs are rendered, device code is
//! generated as IR and linked back.
//!
//!     cargo run --example stencil_pipeline

use idiomatch::idioms::IdiomKind;
use idiomatch::xform;

const JACOBI: &str = "
void jacobi(double* out, double* in_, int n) {
    for (int i = 1; i < n - 1; i++)
        for (int j = 1; j < n - 1; j++)
            out[i*n+j] = 0.2 * (in_[i*n+j] + in_[(i-1)*n+j] + in_[(i+1)*n+j]
                                + in_[i*n+(j-1)] + in_[i*n+(j+1)]);
}";

fn main() {
    let mut module = idiomatch::minicc::compile(JACOBI, "jacobi").expect("compiles");
    let f = module.function("jacobi").unwrap();
    let insts = idiomatch::idioms::detect(f);
    let st = insts
        .iter()
        .find(|i| i.kind == IdiomKind::Stencil2D)
        .expect("stencil found");
    println!(
        "detected Stencil2D with {} taps",
        st.family("read_value").len()
    );

    // Outline the kernel and show the paper's IR-to-C backend output.
    let reads = st.family("read_value");
    let out_value = st.value("write.value").unwrap();
    let kernel = xform::outline_kernel(f, out_value, &reads, "jacobi_kernel").expect("pure");
    let c = xform::ir_to_c(&kernel.function).expect("expressible in C");
    println!("\n== kernel function (IR-to-C backend, for Lift) ==\n{c}");
    println!(
        "== Lift program ==\n{}",
        xform::dsl::lift_program(f, st, &c)
    );
    println!(
        "== Halide pipeline ==\n{}",
        xform::dsl::halide_program(f, st).unwrap()
    );

    // Generate device code and rewrite the program.
    let rep = xform::apply_replacement(&mut module, st, 0).expect("replaced");
    println!("== generated functions ==  {:?}", rep.generated);
    println!("{}", module.function(&rep.callee).unwrap());
}
